#include "service/proto.hpp"

namespace hetpapi::service {

std::string_view to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kOpenSession: return "OpenSession";
    case MsgType::kOpenSessionAck: return "OpenSessionAck";
    case MsgType::kAddEvents: return "AddEvents";
    case MsgType::kAddEventsAck: return "AddEventsAck";
    case MsgType::kStart: return "Start";
    case MsgType::kStartAck: return "StartAck";
    case MsgType::kRead: return "Read";
    case MsgType::kReadReply: return "ReadReply";
    case MsgType::kSubscribe: return "Subscribe";
    case MsgType::kSubscribeAck: return "SubscribeAck";
    case MsgType::kUnsubscribe: return "Unsubscribe";
    case MsgType::kUnsubscribeAck: return "UnsubscribeAck";
    case MsgType::kSample: return "Sample";
    case MsgType::kGetStats: return "GetStats";
    case MsgType::kStatsReply: return "StatsReply";
    case MsgType::kClose: return "Close";
    case MsgType::kCloseAck: return "CloseAck";
    case MsgType::kError: return "Error";
    case MsgType::kGoodbye: return "Goodbye";
    case MsgType::kSubscribeAggregate: return "SubscribeAggregate";
    case MsgType::kSubscribeAggregateAck: return "SubscribeAggregateAck";
    case MsgType::kAggSample: return "AggSample";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
  }
  return "?";
}

// --- Reader ----------------------------------------------------------------

bool Reader::take(std::size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

Expected<std::uint8_t> Reader::u8() {
  if (!take(1)) return make_error(StatusCode::kInvalidArgument, "truncated u8");
  return data_[pos_++];
}

Expected<std::uint32_t> Reader::u32() {
  if (!take(4)) {
    return make_error(StatusCode::kInvalidArgument, "truncated u32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Expected<std::uint64_t> Reader::u64() {
  if (!take(8)) {
    return make_error(StatusCode::kInvalidArgument, "truncated u64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Expected<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v) return v.status();
  return static_cast<std::int64_t>(*v);
}

Expected<double> Reader::f64() {
  auto bits = u64();
  if (!bits) return bits.status();
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Expected<std::string> Reader::str() {
  auto len = u32();
  if (!len) return len.status();
  if (*len > kMaxFrameBytes || !take(*len)) {
    failed_ = true;
    return make_error(StatusCode::kInvalidArgument, "truncated string");
  }
  std::string out(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return out;
}

Expected<std::vector<std::string>> Reader::str_list() {
  auto count = u32();
  if (!count) return count.status();
  std::vector<std::string> out;
  out.reserve(std::min<std::uint32_t>(*count, 1024));
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto s = str();
    if (!s) return s.status();
    out.push_back(std::move(*s));
  }
  return out;
}

Expected<std::vector<long long>> Reader::i64_list() {
  auto count = u32();
  if (!count) return count.status();
  if (static_cast<std::uint64_t>(*count) * 8 > kMaxFrameBytes) {
    failed_ = true;
    return make_error(StatusCode::kInvalidArgument, "oversized i64 list");
  }
  std::vector<long long> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto v = i64();
    if (!v) return v.status();
    out.push_back(static_cast<long long>(*v));
  }
  return out;
}

Expected<std::vector<std::uint8_t>> Reader::u8_list() {
  auto count = u32();
  if (!count) return count.status();
  if (*count > kMaxFrameBytes || !take(*count)) {
    failed_ = true;
    return make_error(StatusCode::kInvalidArgument, "truncated u8 list");
  }
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + *count);
  pos_ += *count;
  return out;
}

// --- framing ---------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  for (int i = 0; i < 4; ++i) out.push_back((length >> (8 * i)) & 0xffu);
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Expected<Frame> FrameReader::next() {
  if (corrupt_) {
    return make_error(StatusCode::kInvalidArgument, "corrupt frame stream");
  }
  // Compact lazily so a long-lived connection doesn't grow forever.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) {
    return make_error(StatusCode::kNotFound, "no complete frame");
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  buffer_[consumed_ + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  if (length == 0 || length > kMaxFrameBytes) {
    corrupt_ = true;
    return make_error(StatusCode::kInvalidArgument, "bad frame length");
  }
  if (available < 4 + static_cast<std::size_t>(length)) {
    return make_error(StatusCode::kNotFound, "no complete frame");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(buffer_[consumed_ + 4]);
  frame.payload.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5),
      buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 4 + length));
  consumed_ += 4 + length;
  return frame;
}

// --- messages --------------------------------------------------------------

namespace {

/// Decode epilogue shared by every message: trailing bytes after the
/// last field mean a framing bug or a newer, incompatible sender.
Status expect_exhausted(const Reader& reader, std::string_view what) {
  if (reader.remaining() != 0) {
    return make_error(StatusCode::kInvalidArgument,
                      std::string(what) + ": trailing bytes");
  }
  return Status::ok();
}

}  // namespace

std::vector<std::uint8_t> Hello::encode() const {
  Writer w;
  w.u32(version);
  w.str(client_name);
  return w.take();
}

Expected<Hello> Hello::decode(const Frame& frame) {
  Reader r = frame.reader();
  Hello m;
  auto version_field = r.u32();
  if (!version_field) return version_field.status();
  m.version = *version_field;
  auto name = r.str();
  if (!name) return name.status();
  m.client_name = std::move(*name);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Hello"));
  return m;
}

std::vector<std::uint8_t> HelloAck::encode(std::uint32_t version_out) const {
  Writer w;
  w.u32(version);
  w.u32(client_id);
  w.str(server_name);
  if (version_out >= 3) w.u64(epoch);
  return w.take();
}

Expected<HelloAck> HelloAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  HelloAck m;
  auto version_field = r.u32();
  if (!version_field) return version_field.status();
  m.version = *version_field;
  auto id = r.u32();
  if (!id) return id.status();
  m.client_id = *id;
  auto name = r.str();
  if (!name) return name.status();
  m.server_name = std::move(*name);
  // v3 tail, all-or-nothing: a v1/v2 ack ends here.
  if (r.remaining() != 0) {
    auto epoch_field = r.u64();
    if (!epoch_field) return epoch_field.status();
    m.epoch = *epoch_field;
  }
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "HelloAck"));
  return m;
}

std::vector<std::uint8_t> OpenSession::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(target_kind));
  w.i64(target);
  return w.take();
}

Expected<OpenSession> OpenSession::decode(const Frame& frame) {
  Reader r = frame.reader();
  OpenSession m;
  auto kind = r.u8();
  if (!kind) return kind.status();
  if (*kind > static_cast<std::uint8_t>(TargetKind::kCpu)) {
    return make_error(StatusCode::kInvalidArgument, "bad target kind");
  }
  m.target_kind = static_cast<TargetKind>(*kind);
  auto target_field = r.i64();
  if (!target_field) return target_field.status();
  m.target = *target_field;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "OpenSession"));
  return m;
}

std::vector<std::uint8_t> OpenSessionAck::encode() const {
  Writer w;
  w.u32(session_id);
  return w.take();
}

Expected<OpenSessionAck> OpenSessionAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  OpenSessionAck m;
  auto id = r.u32();
  if (!id) return id.status();
  m.session_id = *id;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "OpenSessionAck"));
  return m;
}

std::vector<std::uint8_t> AddEvents::encode() const {
  Writer w;
  w.u32(session_id);
  w.str_list(events);
  return w.take();
}

Expected<AddEvents> AddEvents::decode(const Frame& frame) {
  Reader r = frame.reader();
  AddEvents m;
  auto id = r.u32();
  if (!id) return id.status();
  m.session_id = *id;
  auto list = r.str_list();
  if (!list) return list.status();
  m.events = std::move(*list);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "AddEvents"));
  return m;
}

std::vector<std::uint8_t> AddEventsAck::encode() const {
  Writer w;
  w.str_list(canonical_names);
  return w.take();
}

Expected<AddEventsAck> AddEventsAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  AddEventsAck m;
  auto list = r.str_list();
  if (!list) return list.status();
  m.canonical_names = std::move(*list);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "AddEventsAck"));
  return m;
}

std::vector<std::uint8_t> Start::encode() const {
  Writer w;
  w.u32(session_id);
  return w.take();
}

Expected<Start> Start::decode(const Frame& frame) {
  Reader r = frame.reader();
  Start m;
  auto id = r.u32();
  if (!id) return id.status();
  m.session_id = *id;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Start"));
  return m;
}

std::vector<std::uint8_t> Read::encode() const {
  Writer w;
  w.u32(session_id);
  return w.take();
}

Expected<Read> Read::decode(const Frame& frame) {
  Reader r = frame.reader();
  Read m;
  auto id = r.u32();
  if (!id) return id.status();
  m.session_id = *id;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Read"));
  return m;
}

std::vector<std::uint8_t> ReadReply::encode() const {
  Writer w;
  w.i64_list(values);
  w.u8_list(degraded);
  return w.take();
}

Expected<ReadReply> ReadReply::decode(const Frame& frame) {
  Reader r = frame.reader();
  ReadReply m;
  auto vals = r.i64_list();
  if (!vals) return vals.status();
  m.values = std::move(*vals);
  auto deg = r.u8_list();
  if (!deg) return deg.status();
  m.degraded = std::move(*deg);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "ReadReply"));
  return m;
}

std::vector<std::uint8_t> Subscribe::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(target_kind));
  w.i64(target);
  w.str_list(events);
  w.u32(period_ticks);
  w.u8(qualified);
  return w.take();
}

Expected<Subscribe> Subscribe::decode(const Frame& frame) {
  Reader r = frame.reader();
  Subscribe m;
  auto kind = r.u8();
  if (!kind) return kind.status();
  if (*kind > static_cast<std::uint8_t>(TargetKind::kCpu)) {
    return make_error(StatusCode::kInvalidArgument, "bad target kind");
  }
  m.target_kind = static_cast<TargetKind>(*kind);
  auto target_field = r.i64();
  if (!target_field) return target_field.status();
  m.target = *target_field;
  auto list = r.str_list();
  if (!list) return list.status();
  m.events = std::move(*list);
  auto period = r.u32();
  if (!period) return period.status();
  m.period_ticks = *period;
  auto qualified_field = r.u8();
  if (!qualified_field) return qualified_field.status();
  m.qualified = *qualified_field;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Subscribe"));
  return m;
}

std::vector<std::uint8_t> SubscribeAck::encode() const {
  Writer w;
  w.u32(subscription_id);
  w.u32(shared_key_id);
  return w.take();
}

Expected<SubscribeAck> SubscribeAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  SubscribeAck m;
  auto sub = r.u32();
  if (!sub) return sub.status();
  m.subscription_id = *sub;
  auto key = r.u32();
  if (!key) return key.status();
  m.shared_key_id = *key;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "SubscribeAck"));
  return m;
}

std::vector<std::uint8_t> Unsubscribe::encode() const {
  Writer w;
  w.u32(subscription_id);
  return w.take();
}

Expected<Unsubscribe> Unsubscribe::decode(const Frame& frame) {
  Reader r = frame.reader();
  Unsubscribe m;
  auto sub = r.u32();
  if (!sub) return sub.status();
  m.subscription_id = *sub;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Unsubscribe"));
  return m;
}

std::vector<std::uint8_t> WireSample::encode(std::uint32_t version) const {
  Writer w;
  w.u32(subscription_id);
  w.u64(tick);
  w.f64(t_seconds);
  w.i64_list(values);
  w.u8_list(degraded);
  w.u8(counters_ok);
  w.f64(package_temp_c);
  w.f64(package_power_w);
  w.u32(static_cast<std::uint32_t>(parts.size()));
  for (const auto& slot : parts) {
    w.u32(static_cast<std::uint32_t>(slot.size()));
    for (const auto& [name, value] : slot) {
      w.str(name);
      w.i64(value);
    }
  }
  if (version >= 3) w.u64(seq);  // LAST: patched at frame end by fan-out
  return w.take();
}

Expected<WireSample> WireSample::decode(const Frame& frame) {
  Reader r = frame.reader();
  WireSample m;
  auto sub = r.u32();
  if (!sub) return sub.status();
  m.subscription_id = *sub;
  auto tick_field = r.u64();
  if (!tick_field) return tick_field.status();
  m.tick = *tick_field;
  auto t = r.f64();
  if (!t) return t.status();
  m.t_seconds = *t;
  auto vals = r.i64_list();
  if (!vals) return vals.status();
  m.values = std::move(*vals);
  auto deg = r.u8_list();
  if (!deg) return deg.status();
  m.degraded = std::move(*deg);
  auto ok = r.u8();
  if (!ok) return ok.status();
  m.counters_ok = *ok;
  auto temp = r.f64();
  if (!temp) return temp.status();
  m.package_temp_c = *temp;
  auto power = r.f64();
  if (!power) return power.status();
  m.package_power_w = *power;
  auto slot_count = r.u32();
  if (!slot_count) return slot_count.status();
  for (std::uint32_t i = 0; i < *slot_count; ++i) {
    auto part_count = r.u32();
    if (!part_count) return part_count.status();
    std::vector<std::pair<std::string, long long>> slot;
    // Clamp: part_count is attacker-controlled; a corrupt frame must
    // fail on the byte shortfall, not allocate first.
    slot.reserve(std::min<std::uint32_t>(*part_count, 1024));
    for (std::uint32_t j = 0; j < *part_count; ++j) {
      auto name = r.str();
      if (!name) return name.status();
      auto value = r.i64();
      if (!value) return value.status();
      slot.emplace_back(std::move(*name), static_cast<long long>(*value));
    }
    m.parts.push_back(std::move(slot));
  }
  // v3 tail, all-or-nothing: the slot loop consumes every v2 byte, so
  // exactly 8 remaining bytes are the sequence number.
  if (r.remaining() != 0) {
    auto seq_field = r.u64();
    if (!seq_field) return seq_field.status();
    m.seq = *seq_field;
  }
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Sample"));
  return m;
}

std::vector<std::uint8_t> AggSubscribe::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(target_kind));
  w.i64(target);
  w.str_list(events);
  w.u32(period_ticks);
  return w.take();
}

Expected<AggSubscribe> AggSubscribe::decode(const Frame& frame) {
  Reader r = frame.reader();
  AggSubscribe m;
  auto kind = r.u8();
  if (!kind) return kind.status();
  if (*kind > static_cast<std::uint8_t>(TargetKind::kCpu)) {
    return make_error(StatusCode::kInvalidArgument, "bad target kind");
  }
  m.target_kind = static_cast<TargetKind>(*kind);
  auto target_field = r.i64();
  if (!target_field) return target_field.status();
  m.target = *target_field;
  auto list = r.str_list();
  if (!list) return list.status();
  m.events = std::move(*list);
  auto period = r.u32();
  if (!period) return period.status();
  m.period_ticks = *period;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "SubscribeAggregate"));
  return m;
}

std::vector<std::uint8_t> AggSubscribeAck::encode() const {
  Writer w;
  w.u32(subscription_id);
  w.u32(shared_key_id);
  w.u32(fanin);
  return w.take();
}

Expected<AggSubscribeAck> AggSubscribeAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  AggSubscribeAck m;
  auto sub = r.u32();
  if (!sub) return sub.status();
  m.subscription_id = *sub;
  auto key = r.u32();
  if (!key) return key.status();
  m.shared_key_id = *key;
  auto fanin_field = r.u32();
  if (!fanin_field) return fanin_field.status();
  m.fanin = *fanin_field;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "SubscribeAggregateAck"));
  return m;
}

std::vector<std::uint8_t> AggSample::encode(std::uint32_t version) const {
  Writer w;
  w.u32(subscription_id);
  w.u64(tick);
  w.f64(t_seconds);
  w.u8(complete);
  w.u32(static_cast<std::uint32_t>(slots.size()));
  for (const SlotStats& slot : slots) {
    w.i64(slot.sum);
    w.i64(slot.min);
    w.i64(slot.max);
    w.f64(slot.avg);
    w.f64(slot.stddev);
    w.u32(slot.count);
    w.u32(static_cast<std::uint32_t>(slot.per_core_type.size()));
    for (const auto& [name, value] : slot.per_core_type) {
      w.str(name);
      w.i64(value);
    }
  }
  if (version >= 3) w.u64(seq);  // LAST: patched at frame end by fan-out
  return w.take();
}

Expected<AggSample> AggSample::decode(const Frame& frame) {
  Reader r = frame.reader();
  AggSample m;
  auto sub = r.u32();
  if (!sub) return sub.status();
  m.subscription_id = *sub;
  auto tick_field = r.u64();
  if (!tick_field) return tick_field.status();
  m.tick = *tick_field;
  auto t = r.f64();
  if (!t) return t.status();
  m.t_seconds = *t;
  auto complete_field = r.u8();
  if (!complete_field) return complete_field.status();
  m.complete = *complete_field;
  auto slot_count = r.u32();
  if (!slot_count) return slot_count.status();
  for (std::uint32_t i = 0; i < *slot_count; ++i) {
    SlotStats slot;
    auto sum = r.i64();
    if (!sum) return sum.status();
    slot.sum = static_cast<long long>(*sum);
    auto min_field = r.i64();
    if (!min_field) return min_field.status();
    slot.min = static_cast<long long>(*min_field);
    auto max_field = r.i64();
    if (!max_field) return max_field.status();
    slot.max = static_cast<long long>(*max_field);
    auto avg = r.f64();
    if (!avg) return avg.status();
    slot.avg = *avg;
    auto stddev = r.f64();
    if (!stddev) return stddev.status();
    slot.stddev = *stddev;
    auto count = r.u32();
    if (!count) return count.status();
    slot.count = *count;
    auto part_count = r.u32();
    if (!part_count) return part_count.status();
    slot.per_core_type.reserve(
        std::min<std::uint32_t>(*part_count, 1024));
    for (std::uint32_t j = 0; j < *part_count; ++j) {
      auto name = r.str();
      if (!name) return name.status();
      auto value = r.i64();
      if (!value) return value.status();
      slot.per_core_type.emplace_back(std::move(*name),
                                      static_cast<long long>(*value));
    }
    m.slots.push_back(std::move(slot));
  }
  // v3 tail, all-or-nothing (see WireSample::decode).
  if (r.remaining() != 0) {
    auto seq_field = r.u64();
    if (!seq_field) return seq_field.status();
    m.seq = *seq_field;
  }
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "AggSample"));
  return m;
}

std::vector<std::uint8_t> GetStats::encode() const { return {}; }

Expected<GetStats> GetStats::decode(const Frame& frame) {
  Reader r = frame.reader();
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "GetStats"));
  return GetStats{};
}

std::vector<std::uint8_t> StatsReply::encode(std::uint32_t version) const {
  Writer w;
  w.u64(ticks);
  w.u64(backend_reads);
  w.u64(samples_delivered);
  w.u64(frames_received);
  w.u64(frames_sent);
  w.u32(active_clients);
  w.u32(active_sessions);
  w.u32(distinct_subscriptions);
  w.u32(total_subscribers);
  w.u32(clients_dropped_slow);
  w.u32(clients_closed_idle);
  if (version >= 2) {
    w.u32(shards);
    w.u32(downstreams);
    w.u32(agg_subscriptions);
    w.u64(agg_samples_delivered);
  }
  return w.take();
}

Expected<StatsReply> StatsReply::decode(const Frame& frame) {
  Reader r = frame.reader();
  StatsReply m;
  const auto read_u64 = [&](std::uint64_t& field) -> Status {
    auto v = r.u64();
    if (!v) return v.status();
    field = *v;
    return Status::ok();
  };
  const auto read_u32 = [&](std::uint32_t& field) -> Status {
    auto v = r.u32();
    if (!v) return v.status();
    field = *v;
    return Status::ok();
  };
  HETPAPI_RETURN_IF_ERROR(read_u64(m.ticks));
  HETPAPI_RETURN_IF_ERROR(read_u64(m.backend_reads));
  HETPAPI_RETURN_IF_ERROR(read_u64(m.samples_delivered));
  HETPAPI_RETURN_IF_ERROR(read_u64(m.frames_received));
  HETPAPI_RETURN_IF_ERROR(read_u64(m.frames_sent));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.active_clients));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.active_sessions));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.distinct_subscriptions));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.total_subscribers));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.clients_dropped_slow));
  HETPAPI_RETURN_IF_ERROR(read_u32(m.clients_closed_idle));
  // The v2 tail is all-or-nothing: a v1 reply ends here, a v2 reply
  // carries exactly the four extra fields.
  if (r.remaining() != 0) {
    HETPAPI_RETURN_IF_ERROR(read_u32(m.shards));
    HETPAPI_RETURN_IF_ERROR(read_u32(m.downstreams));
    HETPAPI_RETURN_IF_ERROR(read_u32(m.agg_subscriptions));
    HETPAPI_RETURN_IF_ERROR(read_u64(m.agg_samples_delivered));
  }
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "StatsReply"));
  return m;
}

std::vector<std::uint8_t> Close::encode() const { return {}; }

Expected<Close> Close::decode(const Frame& frame) {
  Reader r = frame.reader();
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Close"));
  return Close{};
}

std::vector<std::uint8_t> CloseAck::encode() const { return {}; }

Expected<CloseAck> CloseAck::decode(const Frame& frame) {
  Reader r = frame.reader();
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "CloseAck"));
  return CloseAck{};
}

std::vector<std::uint8_t> WireError::encode() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(code));
  w.u8(in_reply_to);
  w.str(message);
  return w.take();
}

Expected<WireError> WireError::decode(const Frame& frame) {
  Reader r = frame.reader();
  WireError m;
  auto code_field = r.u32();
  if (!code_field) return code_field.status();
  m.code = static_cast<std::int32_t>(*code_field);
  auto reply_to = r.u8();
  if (!reply_to) return reply_to.status();
  m.in_reply_to = *reply_to;
  auto msg = r.str();
  if (!msg) return msg.status();
  m.message = std::move(*msg);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Error"));
  return m;
}

std::vector<std::uint8_t> Goodbye::encode() const {
  Writer w;
  w.str(reason);
  return w.take();
}

Expected<Goodbye> Goodbye::decode(const Frame& frame) {
  Reader r = frame.reader();
  Goodbye m;
  auto reason_field = r.str();
  if (!reason_field) return reason_field.status();
  m.reason = std::move(*reason_field);
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Goodbye"));
  return m;
}

std::vector<std::uint8_t> Ping::encode() const {
  Writer w;
  w.u64(token);
  return w.take();
}

Expected<Ping> Ping::decode(const Frame& frame) {
  Reader r = frame.reader();
  Ping m;
  auto token_field = r.u64();
  if (!token_field) return token_field.status();
  m.token = *token_field;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Ping"));
  return m;
}

std::vector<std::uint8_t> Pong::encode() const {
  Writer w;
  w.u64(token);
  return w.take();
}

Expected<Pong> Pong::decode(const Frame& frame) {
  Reader r = frame.reader();
  Pong m;
  auto token_field = r.u64();
  if (!token_field) return token_field.status();
  m.token = *token_field;
  HETPAPI_RETURN_IF_ERROR(expect_exhausted(r, "Pong"));
  return m;
}

}  // namespace hetpapi::service
