// hetpapid: the counter-service daemon.
//
// One Daemon owns one papi::Library (and through it the backend — sim,
// Linux, or a FaultInjectingBackend decorating either) and serves many
// concurrent client sessions over any Transport. Its two entry points
// are deliberately split so a test or an embedding tool can drive them
// deterministically:
//
//   poll() — accept pending connections, drain client bytes, dispatch
//            complete frames, flush send queues. Never blocks.
//   tick() — one sampling tick: read every *distinct* shared
//            subscription once and fan the sample out to all of its
//            subscribers. Also runs idle-timeout and backpressure
//            enforcement, and (on an aggregator node) pumps the
//            downstream daemons and emits merged aggregate samples.
//
// Shared-subscription coalescing is the scaling mechanism: sessions
// subscribing to the same (target, ordered canonical event list,
// period, qualified) key share one reference-counted server-side
// EventSet, so per-tick backend read calls scale with the number of
// distinct subscriptions, not with the number of clients. The
// canonicalization goes through Library::canonical_event_name, so
// "papi_tot_ins" and "PAPI_TOT_INS" land on the same key.
//
// The c10k fan-out path is sharded: clients are assigned to
// config.shards session shards on accept (round-robin by client id),
// sample encoding produces ONE template frame per distinct due
// subscription (subscription_id is the first payload field, so the
// per-rider copy just patches 4 bytes), and delivery runs one job per
// shard on the encode pool. A client lives in exactly one shard and
// per-shard jobs only touch their own clients plus a private counter
// slot, so the stage is lock-free by partitioning; counters merge
// serially afterwards. Per-client enqueue order follows the global
// (key_id, subscribe order) delivery list regardless of shard count,
// which is what the shards-1-vs-4-vs-16 byte-determinism goldens pin.
//
// Aggregation tree: add_downstream() hands the daemon a service::Client
// connected to another hetpapid. A v2 SubscribeAggregate on a daemon
// *without* downstreams (a leaf) rides the same coalesced shared
// subscription as a qualified Subscribe and streams AggSample frames
// with count=1 statistics — so a merged aggregate is, by construction,
// comparable to a direct subscription. On a daemon *with* downstreams
// the spec fans out to every live downstream; tick() pumps the
// downstream clients, folds their AggSamples (ShellPM's gather shape:
// sum/min/max/avg and exact population-σ composition across the tree)
// and re-exports the merged per-core-type stream. One dead or stale
// downstream marks the merge incomplete but never stalls siblings.
//
// Robustness reuses PR 4's machinery: per-client send queues are capped
// (a slow client is dropped, never allowed to wedge the daemon), idle
// clients without subscriptions time out, shutdown() drains gracefully,
// and running the whole daemon behind a FaultInjectingBackend turns a
// chaos soak into a deterministic test with the live-fd ledger as the
// leak oracle.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/thread_pool.hpp"
#include "papi/library.hpp"
#include "service/client.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"
#include "telemetry/sampler.hpp"

namespace hetpapi::service {

struct DaemonConfig {
  std::string name = "hetpapid";
  /// Frames a client may have queued before it is dropped as slow.
  std::size_t max_client_queue_frames = 256;
  /// Ticks without traffic after which a subscription-less client is
  /// disconnected (0 = never).
  std::uint64_t idle_timeout_ticks = 0;
  /// Worker threads for template encoding and per-shard delivery (the
  /// reads stay serial — the backend is single-threaded); frames are
  /// merged in deterministic order, so the byte stream every client
  /// sees is identical for any thread count.
  std::size_t encode_threads = 1;
  /// Session shards the fan-out partitions clients across (>= 1).
  /// Purely a parallelism knob: the byte stream every client sees is
  /// identical for any shard count.
  std::size_t shards = 1;
  /// Attach package temperature / power (via a telemetry::Sampler over
  /// the kernel) to every streamed sample.
  bool include_telemetry = false;
  /// Session epoch advertised in every v3 HelloAck. A reconnecting
  /// client compares epochs to tell "same daemon process" (tick-based
  /// gap accounting is exact) from "daemon restarted" (gap unknowable).
  /// Caller-provided rather than derived from wall clock or a global
  /// counter so runs stay byte-deterministic.
  std::uint64_t epoch = 1;
  /// Liveness: ping every helloed v3 client whose last traffic is this
  /// many ticks old (0 = pings disabled). A client that misses
  /// `ping_max_missed` consecutive ping deadlines is dropped even if it
  /// still holds subscriptions — a half-open peer must not hold
  /// resources forever.
  std::uint64_t ping_interval_ticks = 0;
  std::uint32_t ping_max_missed = 3;
  /// Admission control (0 = unlimited): connections beyond max_clients
  /// are refused at accept with kOverloaded; subscriptions beyond
  /// max_subscriptions per client are refused with kOverloaded.
  std::size_t max_clients = 0;
  std::size_t max_subscriptions = 0;
  /// Upper bound on send() calls per client during the shutdown drain
  /// flush (0 = unlimited). A peer that accepts one byte at a time must
  /// not be able to wedge shutdown().
  std::size_t shutdown_max_flush_ops = 4096;
  /// Forwarded to papi::Library::init.
  papi::LibraryConfig library{};
};

/// Daemon-side accounting; the wire StatsReply is built from this.
struct DaemonStats {
  std::uint64_t ticks = 0;
  std::uint64_t backend_reads = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t agg_samples_delivered = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint32_t clients_dropped_slow = 0;
  std::uint32_t clients_closed_idle = 0;
  std::uint32_t protocol_errors = 0;
  // Self-healing accounting.
  std::uint64_t reconnects = 0;            // downstream re-dial attempts
  std::uint64_t downstream_reheals = 0;    // legs fully re-subscribed
  std::uint64_t pings_missed = 0;          // liveness deadlines blown
  std::uint64_t clients_dropped_liveness = 0;
  std::uint64_t overload_rejections = 0;   // admission-control refusals
};

class Daemon {
 public:
  /// `kernel` may be null when the backend is not sim-based (no
  /// telemetry attachment, t_seconds counts ticks); `backend` must
  /// outlive the daemon.
  Daemon(simkernel::SimKernel* kernel, papi::Backend* backend,
         DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Build the library over the backend. Must be called (and succeed)
  /// before the first poll().
  Status init();

  /// Register a transport listener (non-owning; multiple allowed).
  void add_listener(Listener* listener);

  /// Make this daemon an aggregator node: adopt a client connected to a
  /// downstream hetpapid. The handshake runs here; a downstream whose
  /// hello fails is kept (indices stay stable) but marked dead. Add
  /// every downstream before the first SubscribeAggregate arrives —
  /// later additions only serve aggregates created after them.
  /// With a non-empty `factory` the leg self-heals: when its link dies,
  /// tick() re-dials through the factory under tick-based exponential
  /// backoff, re-handshakes, and re-subscribes every aggregate's leg so
  /// merges reconverge to complete=1. Without a factory a dead leg
  /// stays dead (the pre-PR-9 degraded-merge behaviour).
  void add_downstream(std::unique_ptr<Client> client,
                      ConnectionFactory factory = {});

  void poll();
  void tick();

  /// Graceful drain: Goodbye to every client, bounded flush, close all
  /// connections and downstream links, release every EventSet. After
  /// this the backend's fd ledger must be empty. Idempotent.
  void shutdown();

  const DaemonStats& stats() const { return stats_; }
  std::size_t client_count() const { return clients_.size(); }
  std::size_t session_count() const;
  std::size_t distinct_subscription_count() const { return shared_subs_.size(); }
  std::size_t total_subscriber_count() const;
  std::size_t downstream_count() const { return downstreams_.size(); }
  std::size_t live_downstream_count() const;
  std::size_t aggregate_subscription_count() const { return agg_subs_.size(); }
  std::size_t shard_count() const { return shard_count_; }

  papi::Library* library() { return library_.get(); }

 private:
  struct Session {
    int eventset = -1;
    std::vector<std::string> canonical_names;
  };

  /// One subscriber of a shared (coalesced) subscription, in subscribe
  /// order. Aggregate riders joined via SubscribeAggregate on a leaf
  /// daemon; they receive AggSample frames built from the same read.
  struct Rider {
    std::uint32_t client_id = 0;
    std::uint32_t subscription_id = 0;
    bool aggregate = false;
    /// v3 delivery sequence for THIS rider, bumped serially while the
    /// delivery list is built (first delivered sample carries seq 1).
    /// A resubscribe after reconnect is a new rider, so the client's
    /// expectation of a fresh sequence holds by construction.
    std::uint64_t seq = 0;
  };

  struct SharedSubscription {
    std::uint32_t key_id = 0;
    std::string key;
    int eventset = -1;
    std::uint32_t period_ticks = 1;
    bool qualified = false;
    /// The refcount is subscribers.size().
    std::vector<Rider> subscribers;
  };

  /// Per-downstream contribution state of one aggregate, index-aligned
  /// with downstreams_.
  struct DownstreamState {
    std::uint32_t sub_id = 0;  // downstream's subscription id; 0 = dead
    bool reported = false;     // ever delivered a sample
    bool fresh = false;        // delivered since the last merge
    AggSample latest;
  };

  /// One coalesced aggregate on a node with downstreams (leaf-side
  /// aggregates live inside SharedSubscription instead).
  struct AggregateShared {
    std::uint32_t key_id = 0;
    std::string key;
    /// The original wire spec, kept so a healed downstream leg can be
    /// re-subscribed verbatim.
    AggSubscribe spec;
    std::uint32_t period_ticks = 1;
    std::size_t slot_count = 0;
    std::vector<DownstreamState> downstream;
    std::vector<Rider> subscribers;
  };

  struct Downstream {
    std::unique_ptr<Client> client;
    bool alive = false;
    /// Self-heal policy: empty = leg stays dead once its link dies.
    ConnectionFactory factory;
    std::uint64_t next_retry_tick = 0;
    std::uint64_t backoff_ticks = 1;
  };

  struct PendingBytes {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;
  };

  struct ClientState {
    std::uint32_t id = 0;
    /// Which fan-out shard delivers to this client.
    std::size_t shard = 0;
    /// Negotiated protocol version (min of client's and ours).
    std::uint32_t version = kProtocolVersion;
    std::unique_ptr<Connection> conn;
    FrameReader reader;
    bool hello_done = false;
    /// Flush-then-close: set after Close/Goodbye.
    bool closing = false;
    std::uint64_t last_activity_tick = 0;
    // Liveness (v3 clients, when ping_interval_ticks > 0): traffic in
    // either direction counts as proof of life; otherwise a Ping goes
    // out and the peer has one interval per deadline to answer.
    std::uint64_t ping_sent_tick = 0;
    bool ping_outstanding = false;
    std::uint32_t pings_missed = 0;
    std::deque<PendingBytes> out;
    std::map<std::uint32_t, Session> sessions;
    /// subscription_id -> shared key_id.
    std::map<std::uint32_t, std::uint32_t> subscriptions;
    /// subscription_id -> aggregate key_id (node-side aggregates only).
    std::map<std::uint32_t, std::uint32_t> agg_subscriptions;
  };

  /// One pending frame hand-off of the batched fan-out: copy the
  /// template matching the rider's protocol version, patch bytes [5,9)
  /// with the subscription id (and, v3, the trailing 8-byte seq),
  /// enqueue. The v2/v3 template pair exists because the v3 shapes
  /// carry the sequence tail; a slot a rider never picks stays empty.
  struct Delivery {
    std::uint32_t client_id = 0;
    std::uint32_t subscription_id = 0;
    std::size_t template_v2 = 0;
    std::size_t template_v3 = 0;
    bool aggregate = false;
    std::uint64_t seq = 0;
  };

  void accept_pending();
  void drain_client(ClientState& client);
  void dispatch(ClientState& client, const Frame& frame);
  /// Flush the send queue; `max_ops` bounds the number of send() calls
  /// (0 = until done or would-block) so a byte-at-a-time peer cannot
  /// wedge the caller.
  void flush_client(ClientState& client, std::size_t max_ops = 0);
  void enforce_queue_cap(ClientState& client);
  void reap_closed();
  /// Re-dial, re-handshake, and re-subscribe dead downstream legs that
  /// have a factory and are past their backoff deadline.
  void heal_downstreams();
  /// Ping v3 clients that have been silent too long; drop the ones that
  /// blew ping_max_missed deadlines.
  void enforce_liveness();

  void enqueue(ClientState& client, MsgType type,
               const std::vector<std::uint8_t>& payload);
  void enqueue_error(ClientState& client, MsgType in_reply_to, const Status& s);

  // Frame handlers (client already authenticated unless noted).
  void on_hello(ClientState& client, const Frame& frame);
  void on_open_session(ClientState& client, const Frame& frame);
  void on_add_events(ClientState& client, const Frame& frame);
  void on_start(ClientState& client, const Frame& frame);
  void on_read(ClientState& client, const Frame& frame);
  void on_subscribe(ClientState& client, const Frame& frame);
  void on_subscribe_aggregate(ClientState& client, const Frame& frame);
  void on_unsubscribe(ClientState& client, const Frame& frame);
  void on_get_stats(ClientState& client, const Frame& frame);
  void on_close(ClientState& client, const Frame& frame);

  /// Build (or join) the shared subscription for a canonicalized spec;
  /// returns the key_id.
  Expected<std::uint32_t> join_subscription(ClientState& client,
                                            std::uint32_t subscription_id,
                                            const Subscribe& spec,
                                            bool aggregate);
  /// Drop one subscriber; tears the EventSet down on the last one.
  void leave_subscription(std::uint32_t client_id, std::uint32_t sub_id,
                          std::uint32_t key_id);
  /// Build (or join) a node-side aggregate, fanning the spec out to
  /// every live downstream; returns the aggregate key_id.
  Expected<std::uint32_t> join_aggregate(ClientState& client,
                                         std::uint32_t subscription_id,
                                         const AggSubscribe& spec);
  /// Drop one aggregate rider; unsubscribes the downstreams on the
  /// last one.
  void leave_aggregate(std::uint32_t client_id, std::uint32_t sub_id,
                       std::uint32_t key_id);
  /// Release everything a departing client holds.
  void teardown_client(ClientState& client);

  /// Bind a fresh EventSet to a wire target and event list.
  Expected<int> build_eventset(TargetKind kind, std::int64_t target,
                               const std::vector<std::string>& events,
                               std::vector<std::string>* canonical_out);

  void serve_subscriptions();
  void serve_aggregates();
  /// The sharded fan-out tail shared by both serve paths: bucket the
  /// deliveries by client shard, run one patch-and-enqueue job per
  /// shard (parallel on the encode pool, lock-free by partitioning),
  /// then fold the per-shard counters into stats_ serially.
  void deliver(const std::vector<std::vector<std::uint8_t>>& templates,
               const std::vector<Delivery>& deliveries);
  /// Fold every reported downstream contribution of one aggregate into
  /// a merged sample (exact hierarchical min/max/avg/σ composition).
  AggSample merge_aggregate(const AggregateShared& agg) const;

  simkernel::SimKernel* kernel_;
  papi::Backend* backend_;
  DaemonConfig config_;
  std::unique_ptr<papi::Library> library_;
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::unique_ptr<ThreadPool> encode_pool_;

  std::vector<Listener*> listeners_;
  /// Insertion-ordered so poll()/tick() visit clients deterministically.
  std::vector<std::unique_ptr<ClientState>> clients_;
  /// The fan-out index: client id -> state, so delivery is O(1) per
  /// frame instead of a linear scan over every connected client.
  std::unordered_map<std::uint32_t, ClientState*> clients_by_id_;
  std::map<std::uint32_t, SharedSubscription> shared_subs_;  // by key_id
  std::map<std::string, std::uint32_t> key_ids_;             // key -> key_id
  std::vector<Downstream> downstreams_;
  std::map<std::uint32_t, AggregateShared> agg_subs_;  // by agg key_id
  std::map<std::string, std::uint32_t> agg_key_ids_;

  DaemonStats stats_;
  std::size_t shard_count_ = 1;
  std::uint32_t next_client_id_ = 1;
  std::uint32_t next_session_id_ = 1;
  std::uint32_t next_subscription_id_ = 1;
  std::uint32_t next_key_id_ = 1;
  std::uint32_t next_agg_key_id_ = 1;
  bool shut_down_ = false;
};

}  // namespace hetpapi::service
