// hetpapid: the counter-service daemon.
//
// One Daemon owns one papi::Library (and through it the backend — sim,
// Linux, or a FaultInjectingBackend decorating either) and serves many
// concurrent client sessions over any Transport. Its two entry points
// are deliberately split so a test or an embedding tool can drive them
// deterministically:
//
//   poll() — accept pending connections, drain client bytes, dispatch
//            complete frames, flush send queues. Never blocks.
//   tick() — one sampling tick: read every *distinct* shared
//            subscription once and fan the sample out to all of its
//            subscribers. Also runs idle-timeout and backpressure
//            enforcement.
//
// Shared-subscription coalescing is the scaling mechanism: sessions
// subscribing to the same (target, ordered canonical event list,
// period, qualified) key share one reference-counted server-side
// EventSet, so per-tick backend read calls scale with the number of
// distinct subscriptions, not with the number of clients. The
// canonicalization goes through Library::canonical_event_name, so
// "papi_tot_ins" and "PAPI_TOT_INS" land on the same key.
//
// Robustness reuses PR 4's machinery: per-client send queues are capped
// (a slow client is dropped, never allowed to wedge the daemon), idle
// clients without subscriptions time out, shutdown() drains gracefully,
// and running the whole daemon behind a FaultInjectingBackend turns a
// chaos soak into a deterministic test with the live-fd ledger as the
// leak oracle.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/thread_pool.hpp"
#include "papi/library.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"
#include "telemetry/sampler.hpp"

namespace hetpapi::service {

struct DaemonConfig {
  std::string name = "hetpapid";
  /// Frames a client may have queued before it is dropped as slow.
  std::size_t max_client_queue_frames = 256;
  /// Ticks without traffic after which a subscription-less client is
  /// disconnected (0 = never).
  std::uint64_t idle_timeout_ticks = 0;
  /// Worker threads for per-subscriber sample *encoding* (the reads
  /// stay serial — the backend is single-threaded); frames are merged
  /// in deterministic order, so the byte stream every client sees is
  /// identical for any thread count.
  std::size_t encode_threads = 1;
  /// Attach package temperature / power (via a telemetry::Sampler over
  /// the kernel) to every streamed sample.
  bool include_telemetry = false;
  /// Forwarded to papi::Library::init.
  papi::LibraryConfig library{};
};

/// Daemon-side accounting; the wire StatsReply is built from this.
struct DaemonStats {
  std::uint64_t ticks = 0;
  std::uint64_t backend_reads = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint32_t clients_dropped_slow = 0;
  std::uint32_t clients_closed_idle = 0;
  std::uint32_t protocol_errors = 0;
};

class Daemon {
 public:
  /// `kernel` may be null when the backend is not sim-based (no
  /// telemetry attachment, t_seconds counts ticks); `backend` must
  /// outlive the daemon.
  Daemon(simkernel::SimKernel* kernel, papi::Backend* backend,
         DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Build the library over the backend. Must be called (and succeed)
  /// before the first poll().
  Status init();

  /// Register a transport listener (non-owning; multiple allowed).
  void add_listener(Listener* listener);

  void poll();
  void tick();

  /// Graceful drain: Goodbye to every client, bounded flush, close all
  /// connections, release every EventSet. After this the backend's fd
  /// ledger must be empty. Idempotent.
  void shutdown();

  const DaemonStats& stats() const { return stats_; }
  std::size_t client_count() const { return clients_.size(); }
  std::size_t session_count() const;
  std::size_t distinct_subscription_count() const { return shared_subs_.size(); }
  std::size_t total_subscriber_count() const;

  papi::Library* library() { return library_.get(); }

 private:
  struct Session {
    int eventset = -1;
    std::vector<std::string> canonical_names;
  };

  struct SharedSubscription {
    std::uint32_t key_id = 0;
    std::string key;
    int eventset = -1;
    std::uint32_t period_ticks = 1;
    bool qualified = false;
    /// (client_id, subscription_id) pairs, in subscribe order — the
    /// refcount is subscribers.size().
    std::vector<std::pair<std::uint32_t, std::uint32_t>> subscribers;
  };

  struct PendingBytes {
    std::vector<std::uint8_t> bytes;
    std::size_t offset = 0;
  };

  struct ClientState {
    std::uint32_t id = 0;
    std::unique_ptr<Connection> conn;
    FrameReader reader;
    bool hello_done = false;
    /// Flush-then-close: set after Close/Goodbye.
    bool closing = false;
    std::uint64_t last_activity_tick = 0;
    std::deque<PendingBytes> out;
    std::map<std::uint32_t, Session> sessions;
    /// subscription_id -> shared key_id.
    std::map<std::uint32_t, std::uint32_t> subscriptions;
  };

  void accept_pending();
  void drain_client(ClientState& client);
  void dispatch(ClientState& client, const Frame& frame);
  void flush_client(ClientState& client);
  void enforce_queue_cap(ClientState& client);
  void reap_closed();

  void enqueue(ClientState& client, MsgType type,
               const std::vector<std::uint8_t>& payload);
  void enqueue_error(ClientState& client, MsgType in_reply_to, const Status& s);

  // Frame handlers (client already authenticated unless noted).
  void on_hello(ClientState& client, const Frame& frame);
  void on_open_session(ClientState& client, const Frame& frame);
  void on_add_events(ClientState& client, const Frame& frame);
  void on_start(ClientState& client, const Frame& frame);
  void on_read(ClientState& client, const Frame& frame);
  void on_subscribe(ClientState& client, const Frame& frame);
  void on_unsubscribe(ClientState& client, const Frame& frame);
  void on_get_stats(ClientState& client, const Frame& frame);
  void on_close(ClientState& client, const Frame& frame);

  /// Build (or join) the shared subscription for a canonicalized spec;
  /// returns the key_id.
  Expected<std::uint32_t> join_subscription(ClientState& client,
                                            std::uint32_t subscription_id,
                                            const Subscribe& spec);
  /// Drop one subscriber; tears the EventSet down on the last one.
  void leave_subscription(std::uint32_t client_id, std::uint32_t sub_id,
                          std::uint32_t key_id);
  /// Release everything a departing client holds.
  void teardown_client(ClientState& client);

  /// Bind a fresh EventSet to a wire target and event list.
  Expected<int> build_eventset(TargetKind kind, std::int64_t target,
                               const std::vector<std::string>& events,
                               std::vector<std::string>* canonical_out);

  void serve_subscriptions();

  simkernel::SimKernel* kernel_;
  papi::Backend* backend_;
  DaemonConfig config_;
  std::unique_ptr<papi::Library> library_;
  std::unique_ptr<telemetry::Sampler> sampler_;
  std::unique_ptr<ThreadPool> encode_pool_;

  std::vector<Listener*> listeners_;
  /// Insertion-ordered so poll()/tick() visit clients deterministically.
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::map<std::uint32_t, SharedSubscription> shared_subs_;  // by key_id
  std::map<std::string, std::uint32_t> key_ids_;             // key -> key_id

  DaemonStats stats_;
  std::uint32_t next_client_id_ = 1;
  std::uint32_t next_session_id_ = 1;
  std::uint32_t next_subscription_id_ = 1;
  std::uint32_t next_key_id_ = 1;
  bool shut_down_ = false;
};

}  // namespace hetpapi::service
