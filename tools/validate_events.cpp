// Counter-validation harness driver: run the exact-truth sweep
// (validation/harness.hpp) on every machine preset — or a chosen one —
// and report violations. CI runs this as its own leg and uploads the
// JUnit XML.
//
//   validate_events [--machine NAME]... [--workload NAME]...
//                   [--junit PATH] [--list]
//
// Exit status 1 when any count disagrees with the simulator's ground
// truth; each failure names the event, machine model, and core type.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "cpumodel/machine.hpp"
#include "validation/harness.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::vector<std::string> machines;
  std::string junit_path;
  validation::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--list") {
      for (const std::string& name : cpumodel::machine_preset_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return 2;
    }
    if (flag == "--machine") {
      machines.push_back(argv[++i]);
    } else if (flag == "--workload") {
      opts.workloads.push_back(argv[++i]);
    } else if (flag == "--junit") {
      junit_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (machines.empty()) machines = cpumodel::machine_preset_names();

  std::vector<std::pair<std::string, validation::Report>> reports;
  std::size_t failures = 0;
  for (const std::string& name : machines) {
    const auto machine = cpumodel::machine_preset_by_name(name);
    if (!machine.has_value()) {
      std::fprintf(stderr, "unknown machine preset %s (try --list)\n",
                   name.c_str());
      return 2;
    }
    validation::Report report = validation::validate_machine(*machine, opts);
    std::printf("%s", validation::render_summary(name, report).c_str());
    failures += report.failures();
    reports.emplace_back(name, std::move(report));
  }

  if (!junit_path.empty()) {
    std::ofstream out(junit_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", junit_path.c_str());
      return 2;
    }
    out << validation::render_junit(reports);
  }

  std::printf("total: %zu machines, %zu failures\n", reports.size(),
              failures);
  return failures == 0 ? 0 : 1;
}
