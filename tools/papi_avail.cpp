// papi_avail equivalent: list the preset events and their availability
// on a machine, including the hybrid expansion (which native events each
// preset derives from on each core PMU) and how availability changes
// under the legacy preset policies.
//
//   papi_avail [--machine raptorlake|orangepi|xeon|tritype]
//              [--policy derived|default-only|error]
#include <cstdio>
#include <string>

#include "base/table.hpp"
#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  std::string policy_name = "derived";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    if (flag == "--machine") machine_name = argv[i + 1];
    if (flag == "--policy") policy_name = argv[i + 1];
  }

  cpumodel::MachineSpec machine =
      machine_name == "orangepi"  ? cpumodel::orangepi800_rk3399()
      : machine_name == "xeon"    ? cpumodel::homogeneous_xeon()
      : machine_name == "tritype" ? cpumodel::arm_three_type()
                                  : cpumodel::raptor_lake_i7_13700();
  simkernel::SimKernel kernel(machine);
  papi::SimBackend backend(&kernel);

  papi::LibraryConfig config;
  config.preset_policy = policy_name == "default-only"
                             ? papi::PresetPolicy::kDefaultPmuOnly
                         : policy_name == "error"
                             ? papi::PresetPolicy::kErrorOnHybrid
                             : papi::PresetPolicy::kDerivedSum;
  auto lib = papi::Library::init(&backend, config);
  if (!lib) {
    std::fprintf(stderr, "init: %s\n", lib.status().to_string().c_str());
    return 1;
  }

  std::printf("Available PAPI preset events on %s (policy: %s)\n",
              machine.name.c_str(), policy_name.c_str());
  std::printf("hybrid: %s; core PMUs:",
              (*lib)->hardware_info().hybrid ? "yes" : "no");
  for (const pfm::ActivePmu* pmu : (*lib)->pfm().default_pmus()) {
    std::printf(" %s", pmu->table->pfm_name.c_str());
  }
  std::printf("\n");

  // papi_component_avail's one-liner: which measurement components the
  // library registered against this backend.
  std::printf("components:");
  for (const auto& component : (*lib)->registry().components()) {
    std::printf(" %s(%s)", std::string(component->name()).c_str(),
                std::string(to_string(component->scope())).c_str());
  }
  std::printf("\n\n");

  const auto available = (*lib)->available_presets();
  const auto is_available = [&](const std::string& name) {
    return std::find(available.begin(), available.end(), name) !=
           available.end();
  };

  TextTable table({"preset", "avail", "description", "expands to"});
  for (const papi::PresetDef& preset : papi::preset_table()) {
    std::string expansion;
    for (const pfm::ActivePmu* pmu : (*lib)->pfm().default_pmus()) {
      const auto native = papi::native_for_kind(*pmu->table, preset.kind);
      if (!expansion.empty()) expansion += " + ";
      expansion += native ? pmu->table->pfm_name + "::" + *native
                          : pmu->table->pfm_name + "::<none>";
    }
    table.add_row({preset.name, is_available(preset.name) ? "yes" : "no",
                   preset.description, expansion});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\n%zu of %zu presets available\n", available.size(),
              papi::preset_table().size());
  return 0;
}
