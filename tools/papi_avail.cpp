// papi_avail equivalent: list the preset events and their availability
// on a machine, including the hybrid expansion (which native events each
// preset derives from on each core PMU, labelled by detected core type)
// and how availability changes under the legacy preset policies.
//
//   papi_avail [--machine <preset>] [--policy derived|default-only|error]
//
// <preset> is any cpumodel catalog name (validate_events --list prints
// them): raptorlake, orangepi, xeon, tritype, alderlake, sierraforest,
// graniterapids, meteorlake, dynamiq.
//
// The rendering itself lives in papi/avail_report.hpp so the report is
// golden-testable in-process.
#include <cstdio>
#include <string>

#include "cpumodel/machine.hpp"
#include "papi/avail_report.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  std::string policy_name = "derived";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    if (flag == "--machine") machine_name = argv[i + 1];
    if (flag == "--policy") policy_name = argv[i + 1];
  }

  const auto preset = cpumodel::machine_preset_by_name(machine_name);
  if (!preset.has_value()) {
    std::fprintf(stderr, "unknown machine preset %s\n", machine_name.c_str());
    return 2;
  }
  const cpumodel::MachineSpec machine = *preset;
  simkernel::SimKernel kernel(machine);
  papi::SimBackend backend(&kernel);

  papi::LibraryConfig config;
  config.preset_policy = policy_name == "default-only"
                             ? papi::PresetPolicy::kDefaultPmuOnly
                         : policy_name == "error"
                             ? papi::PresetPolicy::kErrorOnHybrid
                             : papi::PresetPolicy::kDerivedSum;
  auto lib = papi::Library::init(&backend, config);
  if (!lib) {
    std::fprintf(stderr, "init: %s\n", lib.status().to_string().c_str());
    return 1;
  }

  std::printf("%s", papi::render_avail_report(**lib, machine.name, policy_name)
                        .c_str());
  return 0;
}
