// bench_check: CI guard over BENCH_overhead_read.json — fails (exit 1)
// when the userspace rdpmc read plan regresses past the fd read path.
//
//   bench_check <BENCH_overhead_read.json> [--tolerance <ratio>]
//
// The guarded invariant is relative, not absolute: the rdpmc-plan
// benchmark of each A/B pair must run in at most `tolerance` times its
// syscall-path twin (default 1.0 — strictly no slower; CI passes a
// generous ratio because shared runners are noisy). Absolute
// nanosecond thresholds would tie the check to one machine; the ratio
// ties it to the code.
//
// The JSON is scanned with a purpose-built reader (no JSON dependency
// in the toolchain): benchmark entries are located by their exact
// "name" string and the following "real_time" number. That matches the
// stable google-benchmark output layout; a missing benchmark is an
// error, not a silent pass.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// real_time of the benchmark entry named `name`, or a quiet NaN-like
/// failure via the bool. Scans for "name": "<name>" then the next
/// "real_time": <number>.
bool find_real_time(const std::string& json, const std::string& name,
                    double* out) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::string key = "\"real_time\":";
  const std::size_t key_at = json.find(key, at);
  if (key_at == std::string::npos) return false;
  const char* p = json.c_str() + key_at + key.size();
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  if (end == p) return false;
  *out = value;
  return true;
}

struct Pair {
  const char* fast;  // the rdpmc-plan benchmark
  const char* slow;  // its syscall-path twin
};

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  double tolerance = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (path.empty()) {
      path = arg;
    }
  }
  if (path.empty() || tolerance <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_check <BENCH_overhead_read.json> "
                 "[--tolerance <ratio>]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  const Pair pairs[] = {
      {"BM_Read_RdpmcFastPath", "BM_Read_SyscallPath"},
      {"BM_ReadInto_RdpmcPlan_Hybrid", "BM_ReadInto_SyscallPath_Hybrid"},
  };

  int failures = 0;
  for (const Pair& pair : pairs) {
    double fast = 0.0;
    double slow = 0.0;
    if (!find_real_time(json, pair.fast, &fast)) {
      std::fprintf(stderr, "bench_check: %s missing from %s\n", pair.fast,
                   path.c_str());
      ++failures;
      continue;
    }
    if (!find_real_time(json, pair.slow, &slow)) {
      std::fprintf(stderr, "bench_check: %s missing from %s\n", pair.slow,
                   path.c_str());
      ++failures;
      continue;
    }
    const bool ok = fast <= slow * tolerance;
    std::printf("%-34s %8.1f ns  vs  %-34s %8.1f ns  (ratio %.2f, max %.2f) %s\n",
                pair.fast, fast, pair.slow, slow, slow > 0.0 ? fast / slow : 0.0,
                tolerance, ok ? "OK" : "REGRESSED");
    if (!ok) ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "bench_check: %d failure(s) — the rdpmc read plan must not "
                 "run slower than the fd path\n",
                 failures);
    return 1;
  }
  return 0;
}
