// bench_check: CI guard over benchmark JSON — fails (exit 1) on
// regression. Three modes:
//
//   bench_check <BENCH_overhead_read.json> [--tolerance <ratio>]
//       The rdpmc-plan benchmark of each A/B pair must run in at most
//       `tolerance` times its syscall-path twin (default 1.0; CI passes
//       a generous ratio because shared runners are noisy).
//
//   bench_check --overflow <BENCH_overflow.json>
//       Guards the sampling-mode loss story: every period cell must
//       reconcile exactly (delivered + lost == crossings — a record may
//       drop to an in-band LOST entry, never vanish), and the loss rate
//       must never grow as the period grows (less ring pressure can
//       only lose less). Both guards are deterministic counts, so no
//       tolerance applies.
//
//   bench_check --daemon-load <BENCH_daemon_load.json> [--tolerance <r>]
//       Guards the counter-service scaling story: every cell with at
//       least 64 clients must coalesce at least as well as the
//       same-spec/64 baseline (reads_per_client_read no worse), and
//       every cell's p99 sample-retrieval latency must stay within
//       `tolerance` times the baseline's p99 (default 2.0) — i.e. flat
//       as clients and shards scale. A churn/* cell must be present:
//       session churn (connects, vanishing sockets, reaps) must not
//       move the steady riders' p99 either.
//
// Both guards are relative, not absolute: nanosecond thresholds would
// tie the check to one machine; ratios tie it to the code.
//
// The JSON is scanned with a purpose-built reader (no JSON dependency
// in the toolchain): benchmark entries are located by their exact
// "name"/"label" string and the following numeric keys. That matches
// the stable output layouts; a missing entry is an error, not a silent
// pass.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// real_time of the benchmark entry named `name`, or a quiet NaN-like
/// failure via the bool. Scans for "name": "<name>" then the next
/// "real_time": <number>.
bool find_real_time(const std::string& json, const std::string& name,
                    double* out) {
  const std::string needle = "\"name\": \"" + name + "\"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::string key = "\"real_time\":";
  const std::size_t key_at = json.find(key, at);
  if (key_at == std::string::npos) return false;
  const char* p = json.c_str() + key_at + key.size();
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  if (end == p) return false;
  *out = value;
  return true;
}

struct Pair {
  const char* fast;  // the rdpmc-plan benchmark
  const char* slow;  // its syscall-path twin
};

/// One daemon_load cell, as written by bench/daemon_load.cpp.
struct LoadCell {
  std::string label;
  double clients = 0.0;
  double shards = 0.0;
  double reads_per_client_read = 0.0;
  double p99_us = 0.0;
};

/// Number following `"key": ` inside [from, to); false when absent.
bool find_number_in(const std::string& json, std::size_t from, std::size_t to,
                    const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos || at >= to) return false;
  const char* p = json.c_str() + at + needle.size();
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  if (end == p) return false;
  *out = value;
  return true;
}

/// Every `{"label": ...}` cell object in daemon_load's JSON.
std::vector<LoadCell> parse_load_cells(const std::string& json) {
  std::vector<LoadCell> cells;
  const std::string open = "\"label\": \"";
  std::size_t at = json.find(open);
  while (at != std::string::npos) {
    const std::size_t name_start = at + open.size();
    const std::size_t name_end = json.find('"', name_start);
    if (name_end == std::string::npos) break;
    const std::size_t next = json.find(open, name_end);
    const std::size_t limit = next == std::string::npos ? json.size() : next;
    LoadCell cell;
    cell.label = json.substr(name_start, name_end - name_start);
    if (find_number_in(json, name_end, limit, "clients", &cell.clients) &&
        find_number_in(json, name_end, limit, "shards", &cell.shards) &&
        find_number_in(json, name_end, limit, "reads_per_client_read",
                       &cell.reads_per_client_read) &&
        find_number_in(json, name_end, limit, "p99", &cell.p99_us)) {
      cells.push_back(std::move(cell));
    } else {
      std::fprintf(stderr, "bench_check: cell %s is missing fields\n",
                   cell.label.c_str());
    }
    at = next;
  }
  return cells;
}

/// One overflow_sampling cell, as written by bench/overflow_sampling.cpp.
struct OverflowCell {
  std::string label;
  double period = 0.0;
  double crossings = 0.0;
  double delivered = 0.0;
  double lost = 0.0;
  double lost_rate = 0.0;
};

std::vector<OverflowCell> parse_overflow_cells(const std::string& json) {
  std::vector<OverflowCell> cells;
  const std::string open = "\"label\": \"";
  std::size_t at = json.find(open);
  while (at != std::string::npos) {
    const std::size_t name_start = at + open.size();
    const std::size_t name_end = json.find('"', name_start);
    if (name_end == std::string::npos) break;
    const std::size_t next = json.find(open, name_end);
    const std::size_t limit = next == std::string::npos ? json.size() : next;
    OverflowCell cell;
    cell.label = json.substr(name_start, name_end - name_start);
    if (find_number_in(json, name_end, limit, "period", &cell.period) &&
        find_number_in(json, name_end, limit, "crossings", &cell.crossings) &&
        find_number_in(json, name_end, limit, "delivered", &cell.delivered) &&
        find_number_in(json, name_end, limit, "lost", &cell.lost) &&
        find_number_in(json, name_end, limit, "lost_rate", &cell.lost_rate)) {
      cells.push_back(std::move(cell));
    } else {
      std::fprintf(stderr, "bench_check: cell %s is missing fields\n",
                   cell.label.c_str());
    }
    at = next;
  }
  return cells;
}

int check_overflow(const std::string& json, const std::string& path) {
  const std::vector<OverflowCell> cells = parse_overflow_cells(json);
  if (cells.size() < 3) {
    std::fprintf(stderr,
                 "bench_check: expected a period sweep (>= 3 cells) in %s, "
                 "found %zu\n",
                 path.c_str(), cells.size());
    return 2;
  }
  int failures = 0;
  double last_period = 0.0;
  double last_rate = 0.0;
  bool first = true;
  for (const OverflowCell& cell : cells) {
    // Counts are integers serialized exactly; 0.5 absorbs printf round
    // trips, nothing else.
    const bool exact =
        std::fabs(cell.delivered + cell.lost - cell.crossings) < 0.5;
    bool monotone = true;
    if (!first) {
      if (cell.period < last_period) {
        std::fprintf(stderr,
                     "bench_check: cells out of period order at %s\n",
                     cell.label.c_str());
        ++failures;
      }
      monotone = cell.lost_rate <= last_rate + 1e-9;
    }
    std::printf("%-16s crossings %8.0f delivered %8.0f lost %8.0f "
                "rate %.4f%s%s\n",
                cell.label.c_str(), cell.crossings, cell.delivered, cell.lost,
                cell.lost_rate, exact ? " exact-OK" : " exact-FAILED",
                monotone ? " rate-OK" : " rate-GREW");
    if (!exact || !monotone) ++failures;
    last_period = cell.period;
    last_rate = cell.lost_rate;
    first = false;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "bench_check: %d overflow failure(s) — every period crossing "
                 "must be delivered or counted lost, and less ring pressure "
                 "must never lose more\n",
                 failures);
    return 1;
  }
  return 0;
}

int check_daemon_load(const std::string& json, const std::string& path,
                      double tolerance) {
  const std::vector<LoadCell> cells = parse_load_cells(json);
  if (cells.empty()) {
    std::fprintf(stderr, "bench_check: no cells found in %s\n", path.c_str());
    return 2;
  }
  const LoadCell* baseline = nullptr;
  for (const LoadCell& cell : cells) {
    if (cell.label == "same-spec/64") baseline = &cell;
  }
  if (baseline == nullptr) {
    std::fprintf(stderr, "bench_check: baseline cell same-spec/64 missing from %s\n",
                 path.c_str());
    return 2;
  }
  // The self-healing fabric's churn guard rides the same p99 check as
  // every other cell — but the cell must exist, or session churn is
  // silently unguarded.
  bool have_churn = false;
  for (const LoadCell& cell : cells) {
    if (cell.label.rfind("churn/", 0) == 0) have_churn = true;
  }
  if (!have_churn) {
    std::fprintf(stderr,
                 "bench_check: churn cell (churn/*) missing from %s\n",
                 path.c_str());
    return 2;
  }
  std::printf("baseline same-spec/64: ratio %.6f, p99 %.3f us, max p99 ratio %.2f\n",
              baseline->reads_per_client_read, baseline->p99_us, tolerance);
  int failures = 0;
  for (const LoadCell& cell : cells) {
    if (&cell == baseline) continue;
    // Both guards watch scaling UP from the baseline: cells below its
    // population (the distinct-spec control, the cold 1–2 client cells)
    // are context, not the story.
    if (cell.clients < baseline->clients) {
      std::printf("%-28s ratio %.6f p99 %8.3f us  (below baseline, unguarded)\n",
                  cell.label.c_str(), cell.reads_per_client_read, cell.p99_us);
      continue;
    }
    // Coalescing: more clients (or more shards) must never cost more
    // backend reads per delivered sample than the baseline.
    const bool reads_ok =
        cell.reads_per_client_read <= baseline->reads_per_client_read + 1e-9;
    const bool p99_ok = cell.p99_us <= baseline->p99_us * tolerance;
    const bool ok = reads_ok && p99_ok;
    std::string verdicts;
    verdicts += reads_ok ? " reads-OK" : " reads-REGRESSED";
    verdicts += p99_ok ? " p99-OK" : " p99-REGRESSED";
    std::printf("%-28s ratio %.6f p99 %8.3f us %s\n", cell.label.c_str(),
                cell.reads_per_client_read, cell.p99_us, verdicts.c_str());
    if (!ok) ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "bench_check: %d daemon-load failure(s) — backend reads must "
                 "scale with distinct specs and p99 must stay flat\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  double tolerance = 0.0;
  bool daemon_load = false;
  bool overflow = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--daemon-load") {
      daemon_load = true;
    } else if (arg == "--overflow") {
      overflow = true;
    } else if (path.empty()) {
      path = arg;
    }
  }
  if (tolerance == 0.0) tolerance = daemon_load ? 2.0 : 1.0;
  if (path.empty() || tolerance <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_check [--daemon-load | --overflow] "
                 "<BENCH.json> [--tolerance <ratio>]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  if (overflow) return check_overflow(json, path);
  if (daemon_load) return check_daemon_load(json, path, tolerance);

  const Pair pairs[] = {
      {"BM_Read_RdpmcFastPath", "BM_Read_SyscallPath"},
      {"BM_ReadInto_RdpmcPlan_Hybrid", "BM_ReadInto_SyscallPath_Hybrid"},
  };

  int failures = 0;
  for (const Pair& pair : pairs) {
    double fast = 0.0;
    double slow = 0.0;
    if (!find_real_time(json, pair.fast, &fast)) {
      std::fprintf(stderr, "bench_check: %s missing from %s\n", pair.fast,
                   path.c_str());
      ++failures;
      continue;
    }
    if (!find_real_time(json, pair.slow, &slow)) {
      std::fprintf(stderr, "bench_check: %s missing from %s\n", pair.slow,
                   path.c_str());
      ++failures;
      continue;
    }
    const bool ok = fast <= slow * tolerance;
    std::printf("%-34s %8.1f ns  vs  %-34s %8.1f ns  (ratio %.2f, max %.2f) %s\n",
                pair.fast, fast, pair.slow, slow, slow > 0.0 ? fast / slow : 0.0,
                tolerance, ok ? "OK" : "REGRESSED");
    if (!ok) ++failures;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "bench_check: %d failure(s) — the rdpmc read plan must not "
                 "run slower than the fd path\n",
                 failures);
    return 1;
  }
  return 0;
}
