// simperf stat — a miniature `perf stat` over the simulated kernel.
//
// This is the baseline tool the paper contrasts PAPI against (§IV-A):
// perf handles hybrid systems "by setting up multiple events on
// heterogeneous systems and reporting all of the results gathered" —
// aggregate, whole-program counts with multiplexing percentages, but no
// source-code calipers. The output format follows perf's.
//
//   simperf_stat [--machine raptorlake|orangepi|xeon]
//                [-e ev1,ev2,...]        (default: a perf-stat-like set)
//                [--taskset <cpulist>]
//                [--workload loop|hpl]   (hpl: a whole multithreaded run,
//                                         measured via inherited events —
//                                         "perf stat ./xhpl")
//                [--instructions <count>] [--memory-bound]
#include <cstdio>
#include <string>
#include <vector>

#include "base/cli.hpp"
#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "pfm/pfmlib.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"
#include "workload/hpl.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;

namespace {

struct OpenEvent {
  std::string name;
  int fd = -1;
};

}  // namespace

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  std::string events_arg;
  std::string taskset;
  std::string workload = "loop";
  std::uint64_t instructions = 2'000'000'000ULL;
  bool memory_bound = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--memory-bound") {
      memory_bound = true;
    } else if (i + 1 < argc) {
      const char* value = argv[++i];
      if (flag == "--machine") machine_name = value;
      else if (flag == "-e") events_arg = value;
      else if (flag == "--taskset") taskset = value;
      else if (flag == "--workload") workload = value;
      else if (flag == "--instructions") {
        instructions =
            static_cast<std::uint64_t>(cli::require_positive_int(flag, value));
      }
    }
  }

  cpumodel::MachineSpec machine =
      machine_name == "orangepi" ? cpumodel::orangepi800_rk3399()
      : machine_name == "xeon"   ? cpumodel::homogeneous_xeon()
                                 : cpumodel::raptor_lake_i7_13700();
  simkernel::SimKernel::Config config;
  config.sched.migration_rate_hz = 30.0;
  simkernel::SimKernel kernel(machine, config);

  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  if (const Status s = pfmlib.initialize(host); !s.is_ok()) {
    std::fprintf(stderr, "pfm: %s\n", s.to_string().c_str());
    return 1;
  }

  // Default event list: like perf stat, instructions + cycles + branches
  // on EVERY core PMU (perf's hybrid expansion).
  std::vector<std::string> names;
  if (events_arg.empty()) {
    for (const pfm::ActivePmu* pmu : pfmlib.default_pmus()) {
      const std::string prefix = pmu->table->pfm_name + "::";
      names.push_back(prefix + "INST_RETIRED" +
                      (machine.vendor == cpumodel::Vendor::kIntel ? ":ANY" : ""));
      names.push_back(prefix + (machine.vendor == cpumodel::Vendor::kIntel
                                    ? "CPU_CLK_UNHALTED:THREAD"
                                    : "CPU_CYCLES"));
    }
  } else {
    for (std::string_view field : split(events_arg, ',')) {
      names.emplace_back(trim(field));
    }
  }

  // The measured "process".
  workload::PhaseSpec phase;
  if (memory_bound) phase = workload::phases::memory_bound();
  simkernel::CpuSet affinity = simkernel::CpuSet::all(machine.num_cpus());
  if (!taskset.empty()) {
    const auto cpus = parse_cpulist(taskset);
    if (!cpus) {
      std::fprintf(stderr, "bad --taskset\n");
      return 1;
    }
    affinity = simkernel::CpuSet::of(*cpus);
  }
  // The measured "process": either a single busy loop or a whole
  // multithreaded HPL run whose workers join the leader's group.
  std::unique_ptr<workload::HplSimulation> hpl;
  simkernel::Tid tid;
  if (workload == "hpl") {
    const int n = machine_name == "orangepi" ? 10240 : 20736;
    const int nb = machine_name == "orangepi" ? 128 : 192;
    hpl = std::make_unique<workload::HplSimulation>(
        workload::HplConfig::openblas(n, nb),
        affinity.count());
    const std::vector<int> cpus = affinity.to_list();
    tid = kernel.spawn(hpl->make_worker(0), simkernel::CpuSet::of({cpus[0]}));
    for (std::size_t i = 1; i < cpus.size(); ++i) {
      (void)kernel.spawn_in_group(hpl->make_worker(static_cast<int>(i)),
                                  simkernel::CpuSet::of({cpus[i]}), tid);
    }
  } else {
    tid = kernel.spawn(
        std::make_shared<workload::FixedWorkProgram>(phase, instructions),
        affinity);
  }

  // Open one counting event per requested name (perf style: flat
  // inherited events on the leader, so the whole group is covered and
  // the kernel multiplexes freely if needed).
  std::vector<OpenEvent> open_events;
  for (const std::string& name : names) {
    auto enc = pfmlib.encode(name);
    if (!enc) {
      std::fprintf(stderr, "event '%s': %s\n", name.c_str(),
                   enc.status().to_string().c_str());
      return 1;
    }
    simkernel::PerfEventAttr attr;
    attr.type = enc->perf_type;
    attr.config = enc->config;
    attr.inherit = true;
    auto fd = kernel.perf_event_open(attr, tid, -1, -1);
    if (!fd) {
      std::fprintf(stderr, "open '%s': %s\n", name.c_str(),
                   fd.status().to_string().c_str());
      return 1;
    }
    open_events.push_back(OpenEvent{enc->canonical_name, *fd});
  }

  const SimTime start = kernel.now();
  kernel.run_until_idle(std::chrono::seconds(3600));
  const double seconds =
      static_cast<double>((kernel.now() - start).count()) / 1e9;

  std::printf("\n Performance counter stats (simulated, %s):\n\n",
              machine.name.c_str());
  for (const OpenEvent& event : open_events) {
    const auto value = kernel.perf_read(event.fd);
    if (!value) continue;
    const double running_pct =
        value->time_enabled_ns > 0
            ? 100.0 * static_cast<double>(value->time_running_ns) /
                  static_cast<double>(value->time_enabled_ns)
            : 0.0;
    std::printf("    %20llu      %-40s",
                static_cast<unsigned long long>(value->value),
                event.name.c_str());
    if (running_pct < 99.95 && running_pct > 0.0) {
      std::printf(" (%5.2f%%)", running_pct);
    }
    std::printf("\n");
  }
  std::printf("\n       %.6f seconds time elapsed (simulated)\n\n", seconds);
  return 0;
}
