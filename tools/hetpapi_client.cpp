// hetpapi_client: drive the counter-service daemon from the command
// line. Two subcommands mirror the classic perf workflow:
//
//   hetpapi_client stat    — one session, aggregate counts over a run
//   hetpapi_client monitor — one shared subscription, streamed samples
//
// The daemon runs in-process over the deterministic loopback transport
// with a simulated workload thread (pick the machine with --machine),
// so the tool is reproducible anywhere; the same Client class speaks to
// a real hetpapid over a unix socket (see examples/counter_service.cpp
// for the socket wiring).
//
// With --aggregate N the monitor subcommand builds an in-process
// aggregation tree instead: N leaf daemons (each over its own simulated
// machine + workload) feed one aggregator node, and the client
// subscribes the merged per-core-type stream at the node. --stats
// renders the final ShellPM-style min/max/avg/σ table.
//
//   hetpapi_client stat    [--machine M] [--events a,b,...] [--ms N]
//   hetpapi_client monitor [--machine M] [--events a,b,...]
//                          [--period P] [--ticks N] [--qualified]
//                          [--aggregate N] [--stats] [--shards S]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/cli.hpp"
#include "base/strings.hpp"
#include "service/stats_report.hpp"
#include "cpumodel/machine.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

using namespace hetpapi;
using service::Client;
using service::TargetKind;

namespace {

struct Options {
  std::string command;
  std::string machine = "raptorlake";
  std::vector<std::string> events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  int ms = 100;            // stat: simulated run length
  int period = 1;          // monitor: ticks between samples
  int ticks = 10;          // monitor: sampling ticks to run
  bool qualified = false;  // monitor: stream per-PMU constituents
  int aggregate = 0;       // monitor: leaf daemons under an aggregator
  bool stats = false;      // monitor: render the final statistics table
  int shards = 1;          // daemon fan-out shards
  bool reconnect = false;  // auto-reconnect across transport loss
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: hetpapi_client <stat|monitor> [options]\n"
      "  --machine <preset>     (any cpumodel catalog name; default "
      "raptorlake)\n"
      "  --events ev1,ev2,...   (default PAPI_TOT_INS,PAPI_TOT_CYC)\n"
      "  --ms N        stat: simulated milliseconds to run (default 100)\n"
      "  --period P    monitor: ticks between samples (default 1)\n"
      "  --ticks N     monitor: sampling ticks to run (default 10)\n"
      "  --qualified   monitor: stream per-PMU constituent values\n"
      "  --aggregate N monitor: aggregate N leaf daemons under one node\n"
      "  --stats       monitor: render the final min/max/avg/stddev table\n"
      "  --shards S    daemon fan-out shards (default 1)\n"
      "  --reconnect   re-dial, re-handshake and resubscribe when the\n"
      "                transport dies (exits non-zero otherwise)\n");
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opts;
  if (argc < 2) usage();
  opts.command = argv[1];
  if (opts.command != "stat" && opts.command != "monitor") usage();
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--qualified") {
      opts.qualified = true;
      continue;
    }
    if (arg == "--stats") {
      opts.stats = true;
      continue;
    }
    if (arg == "--reconnect") {
      opts.reconnect = true;
      continue;
    }
    if (i + 1 >= argc) usage();
    const std::string_view value = argv[++i];
    if (arg == "--machine") {
      opts.machine = value;
    } else if (arg == "--events") {
      opts.events.clear();
      for (const std::string_view ev : split(value, ',')) {
        if (!ev.empty()) opts.events.emplace_back(ev);
      }
      if (opts.events.empty()) cli::usage_error(arg, value, "an event list");
    } else if (arg == "--ms") {
      opts.ms = static_cast<int>(cli::require_positive_int(arg, value));
    } else if (arg == "--period") {
      opts.period = static_cast<int>(cli::require_positive_int(arg, value));
    } else if (arg == "--ticks") {
      opts.ticks = static_cast<int>(cli::require_positive_int(arg, value));
    } else if (arg == "--aggregate") {
      opts.aggregate = static_cast<int>(cli::require_positive_int(arg, value));
    } else if (arg == "--shards") {
      opts.shards = static_cast<int>(cli::require_positive_int(arg, value));
    } else {
      usage();
    }
  }
  // --stats reads the aggregate stream; give it a two-leaf tree unless
  // the caller sized one explicitly.
  if (opts.stats && opts.aggregate == 0) opts.aggregate = 2;
  return opts;
}

cpumodel::MachineSpec machine_by_name(const std::string& name) {
  auto machine = cpumodel::machine_preset_by_name(name);
  return machine.has_value() ? *machine : cpumodel::raptor_lake_i7_13700();
}

/// A daemon farewell ends the run: surface the reason once so the
/// operator knows WHY the stream stopped (idle, slow, liveness,
/// shutdown, overload) instead of silently getting fewer samples. With
/// --reconnect the run continues (the client heals on its next op);
/// without it the caller exits non-zero.
bool report_goodbye(Client& client, bool& reported) {
  if (client.goodbye_reason().empty() || reported) {
    return !client.goodbye_reason().empty();
  }
  reported = true;
  std::fprintf(stderr, "daemon said goodbye: %s\n",
               client.goodbye_reason().c_str());
  return true;
}

void print_resume_stats(const Client& client) {
  const service::ResumeStats& rs = client.resume_stats();
  std::printf(
      "reconnect: %llu resumes over %llu dials, %llu gaps (%llu samples "
      "missed), %llu unknown gaps, %llu epoch changes\n",
      static_cast<unsigned long long>(rs.reconnects),
      static_cast<unsigned long long>(rs.attempts),
      static_cast<unsigned long long>(rs.gaps),
      static_cast<unsigned long long>(rs.samples_missed),
      static_cast<unsigned long long>(rs.unknown_gaps),
      static_cast<unsigned long long>(rs.epoch_changes));
}

/// The in-process serving stack: daemon + sim workload over loopback.
struct Stack {
  std::unique_ptr<simkernel::SimKernel> kernel;
  std::unique_ptr<papi::SimBackend> backend;
  std::unique_ptr<service::LoopbackTransport> transport;
  std::unique_ptr<service::Daemon> daemon;
  simkernel::Tid tid{};

  Status init(const Options& opts, const std::string& name = "hetpapid") {
    kernel = std::make_unique<simkernel::SimKernel>(
        machine_by_name(opts.machine));
    backend = std::make_unique<papi::SimBackend>(kernel.get());
    transport = std::make_unique<service::LoopbackTransport>();
    service::DaemonConfig config;
    config.name = name;
    config.shards = static_cast<std::size_t>(opts.shards);
    daemon = std::make_unique<service::Daemon>(kernel.get(), backend.get(),
                                               config);
    tid = kernel->spawn(
        std::make_shared<workload::FixedWorkProgram>(workload::PhaseSpec{},
                                                     4'000'000'000ull),
        simkernel::CpuSet::of({0}));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }
};

int run_stat(Stack& stack, const Options& opts) {
  Client client(stack.transport->connect());
  if (opts.reconnect) {
    client.enable_reconnect(
        [&stack]() -> Expected<std::unique_ptr<service::Connection>> {
          return stack.transport->connect();
        });
  }
  if (const Status s = client.hello("hetpapi_client"); !s.is_ok()) {
    std::fprintf(stderr, "hello: %s\n", s.to_string().c_str());
    return 1;
  }
  auto session = client.open_session(TargetKind::kThread, stack.tid);
  if (!session.has_value()) {
    std::fprintf(stderr, "open_session: %s\n",
                 session.status().to_string().c_str());
    return 1;
  }
  auto ack = client.add_events(*session, opts.events);
  if (!ack.has_value()) {
    std::fprintf(stderr, "add_events: %s\n", ack.status().to_string().c_str());
    return 1;
  }
  if (const Status s = client.start(*session); !s.is_ok()) {
    std::fprintf(stderr, "start: %s\n", s.to_string().c_str());
    return 1;
  }
  stack.kernel->run_for(std::chrono::milliseconds(opts.ms));
  auto reading = client.read(*session);
  if (!reading.has_value()) {
    std::fprintf(stderr, "read: %s\n", reading.status().to_string().c_str());
    return 1;
  }
  std::printf("counter stats on %s over %d simulated ms:\n",
              opts.machine.c_str(), opts.ms);
  for (std::size_t i = 0; i < reading->values.size(); ++i) {
    const bool degraded =
        i < reading->degraded.size() && reading->degraded[i] != 0;
    std::printf("  %-24s %16lld%s\n", ack->canonical_names[i].c_str(),
                reading->values[i], degraded ? "  (degraded)" : "");
  }
  static_cast<void>(client.close());
  return 0;
}

int run_monitor(Stack& stack, const Options& opts) {
  Client client(stack.transport->connect());
  if (opts.reconnect) {
    client.enable_reconnect(
        [&stack]() -> Expected<std::unique_ptr<service::Connection>> {
          return stack.transport->connect();
        });
  }
  if (const Status s = client.hello("hetpapi_client"); !s.is_ok()) {
    std::fprintf(stderr, "hello: %s\n", s.to_string().c_str());
    return 1;
  }
  service::Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = stack.tid;
  spec.events = opts.events;
  spec.period_ticks = static_cast<std::uint32_t>(opts.period);
  spec.qualified = opts.qualified ? 1 : 0;
  auto ack = client.subscribe(spec);
  if (!ack.has_value()) {
    std::fprintf(stderr, "subscribe: %s\n", ack.status().to_string().c_str());
    return 1;
  }
  std::printf("monitoring %s (subscription %u, shared key %u, period %d)\n",
              opts.machine.c_str(), ack->subscription_id, ack->shared_key_id,
              opts.period);
  bool goodbye_reported = false;
  for (int t = 0; t < opts.ticks; ++t) {
    stack.kernel->run_for(std::chrono::milliseconds(10));
    stack.daemon->tick();
    if (report_goodbye(client, goodbye_reported) && !opts.reconnect) return 1;
    for (const service::WireSample& sample : client.take_samples()) {
      std::printf("tick %llu t=%.3fs:",
                  static_cast<unsigned long long>(sample.tick),
                  sample.t_seconds);
      for (std::size_t i = 0; i < sample.values.size(); ++i) {
        std::printf("  %s=%lld", spec.events[i].c_str(), sample.values[i]);
      }
      std::printf("\n");
      for (std::size_t i = 0; i < sample.parts.size(); ++i) {
        if (sample.parts[i].empty()) continue;
        std::printf("    %s parts:", spec.events[i].c_str());
        for (const auto& [name, value] : sample.parts[i]) {
          std::printf(" %s=%lld", name.c_str(), value);
        }
        std::printf("\n");
      }
    }
  }
  auto stats = client.stats();
  if (stats.has_value()) {
    std::printf(
        "daemon: %llu ticks, %llu backend reads, %llu samples delivered\n",
        static_cast<unsigned long long>(stats->ticks),
        static_cast<unsigned long long>(stats->backend_reads),
        static_cast<unsigned long long>(stats->samples_delivered));
  }
  if (opts.reconnect) print_resume_stats(client);
  if (report_goodbye(client, goodbye_reported) && !opts.reconnect) return 1;
  static_cast<void>(client.close());
  return 0;
}

/// The aggregation tree: N leaf stacks (each its own machine +
/// workload) feeding one aggregator node the end client talks to.
struct AggTree {
  std::vector<std::unique_ptr<Stack>> leaves;
  std::unique_ptr<simkernel::SimKernel> node_kernel;
  std::unique_ptr<papi::SimBackend> node_backend;
  std::unique_ptr<service::LoopbackTransport> node_transport;
  std::unique_ptr<service::Daemon> node;

  Status init(const Options& opts) {
    for (int i = 0; i < opts.aggregate; ++i) {
      auto leaf = std::make_unique<Stack>();
      if (Status s = leaf->init(opts, str_format("hetpapid-leaf%d", i));
          !s.is_ok()) {
        return s;
      }
      leaves.push_back(std::move(leaf));
    }
    node_kernel = std::make_unique<simkernel::SimKernel>(
        machine_by_name(opts.machine));
    node_backend = std::make_unique<papi::SimBackend>(node_kernel.get());
    service::DaemonConfig config;
    config.name = "hetpapid-root";
    config.shards = static_cast<std::size_t>(opts.shards);
    node = std::make_unique<service::Daemon>(node_kernel.get(),
                                             node_backend.get(), config);
    if (Status s = node->init(); !s.is_ok()) return s;
    node_transport = std::make_unique<service::LoopbackTransport>();
    node->add_listener(node_transport->listener());
    node_transport->set_pump([this] { node->poll(); });
    for (auto& leaf : leaves) {
      node->add_downstream(
          std::make_unique<Client>(leaf->transport->connect()));
    }
    return Status::ok();
  }

  /// One lock-step tick of the whole tree: leaves sample first, then
  /// the node pumps and merges.
  void tick(std::chrono::milliseconds dt) {
    for (auto& leaf : leaves) {
      leaf->kernel->run_for(dt);
      leaf->daemon->tick();
    }
    node_kernel->run_for(dt);
    node->poll();
    node->tick();
  }

  void shutdown() {
    if (node != nullptr) node->shutdown();
    for (auto& leaf : leaves) leaf->daemon->shutdown();
  }
};

int run_aggregate(AggTree& tree, const Options& opts) {
  Client client(tree.node_transport->connect());
  if (opts.reconnect) {
    client.enable_reconnect(
        [&tree]() -> Expected<std::unique_ptr<service::Connection>> {
          return tree.node_transport->connect();
        });
  }
  if (const Status s = client.hello("hetpapi_client"); !s.is_ok()) {
    std::fprintf(stderr, "hello: %s\n", s.to_string().c_str());
    return 1;
  }
  service::AggSubscribe spec;
  spec.target_kind = TargetKind::kThread;
  // Every leaf spawns its workload first, so the tid is identical on
  // each downstream machine.
  spec.target = tree.leaves.front()->tid;
  spec.events = opts.events;
  spec.period_ticks = static_cast<std::uint32_t>(opts.period);
  auto ack = client.subscribe_aggregate(spec);
  if (!ack.has_value()) {
    std::fprintf(stderr, "subscribe_aggregate: %s\n",
                 ack.status().to_string().c_str());
    return 1;
  }
  std::printf(
      "aggregating %d x %s (subscription %u, fan-in %u, period %d)\n",
      opts.aggregate, opts.machine.c_str(), ack->subscription_id, ack->fanin,
      opts.period);
  service::AggSample last;
  bool have_sample = false;
  bool goodbye_reported = false;
  for (int t = 0; t < opts.ticks; ++t) {
    tree.tick(std::chrono::milliseconds(10));
    if (report_goodbye(client, goodbye_reported) && !opts.reconnect) return 1;
    for (const service::AggSample& sample : client.take_agg_samples()) {
      std::printf("tick %llu t=%.3fs%s:",
                  static_cast<unsigned long long>(sample.tick),
                  sample.t_seconds, sample.complete ? "" : " (partial)");
      for (std::size_t i = 0; i < sample.slots.size(); ++i) {
        const service::SlotStats& slot = sample.slots[i];
        std::printf("  %s sum=%lld min=%lld max=%lld", opts.events[i].c_str(),
                    slot.sum, slot.min, slot.max);
      }
      std::printf("\n");
      last = sample;
      have_sample = true;
    }
  }
  if (opts.stats && have_sample) {
    std::printf("%s",
                service::render_agg_stats_report(opts.events, last).c_str());
  }
  auto stats = client.stats();
  if (stats.has_value()) {
    std::printf(
        "root daemon: %llu ticks, %u downstreams, %u aggregates, %llu "
        "aggregate samples delivered\n",
        static_cast<unsigned long long>(stats->ticks), stats->downstreams,
        stats->agg_subscriptions,
        static_cast<unsigned long long>(stats->agg_samples_delivered));
  }
  if (opts.reconnect) print_resume_stats(client);
  if (report_goodbye(client, goodbye_reported) && !opts.reconnect) return 1;
  static_cast<void>(client.close());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);
  if (opts.command == "monitor" && opts.aggregate > 0) {
    AggTree tree;
    if (const Status s = tree.init(opts); !s.is_ok()) {
      std::fprintf(stderr, "aggregator init: %s\n", s.to_string().c_str());
      return 1;
    }
    const int rc = run_aggregate(tree, opts);
    tree.shutdown();
    return rc;
  }
  Stack stack;
  if (const Status s = stack.init(opts); !s.is_ok()) {
    std::fprintf(stderr, "daemon init: %s\n", s.to_string().c_str());
    return 1;
  }
  const int rc = opts.command == "stat" ? run_stat(stack, opts)
                                        : run_monitor(stack, opts);
  stack.daemon->shutdown();
  return rc;
}
