// papi_native_avail equivalent: list every native event of every active
// PMU on a machine, flagging which core types provide each event name —
// the listing that makes per-core-type availability differences (like
// topdown being P-core-only) visible to users.
//
//   papi_native_avail [--machine raptorlake|orangepi|xeon|tritype]
#include <cstdio>
#include <map>
#include <string>

#include "cpumodel/machine.hpp"
#include "pfm/pfmlib.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string_view(argv[i]) == "--machine") machine_name = argv[i + 1];
  }
  cpumodel::MachineSpec machine =
      machine_name == "orangepi"  ? cpumodel::orangepi800_rk3399()
      : machine_name == "xeon"    ? cpumodel::homogeneous_xeon()
      : machine_name == "tritype" ? cpumodel::arm_three_type()
                                  : cpumodel::raptor_lake_i7_13700();
  simkernel::SimKernel kernel(machine);
  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  if (const Status s = pfmlib.initialize(host); !s.is_ok()) {
    std::fprintf(stderr, "pfm: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("Native events on %s\n", machine.name.c_str());
  int total = 0;
  for (const pfm::ActivePmu& pmu : pfmlib.pmus()) {
    std::printf("\n--- PMU %s (%s, perf type %u)%s ---\n",
                pmu.table->pfm_name.c_str(), pmu.sysfs_name.c_str(),
                pmu.perf_type, pmu.is_core ? " [core]" : "");
    for (const pfm::EventDesc& event : pmu.table->events) {
      if (event.umasks.empty()) {
        std::printf("  %-46s %s\n",
                    (pmu.table->pfm_name + "::" + event.name).c_str(),
                    event.description.c_str());
        ++total;
        continue;
      }
      std::printf("  %s::%s — %s\n", pmu.table->pfm_name.c_str(),
                  event.name.c_str(), event.description.c_str());
      for (const pfm::UmaskDesc& umask : event.umasks) {
        std::printf("      :%-20s %s\n", umask.name.c_str(),
                    umask.description.c_str());
        ++total;
      }
    }
  }

  // Cross-PMU availability diff for the core PMUs (the §I-C asymmetry).
  const auto core_pmus = pfmlib.default_pmus();
  if (core_pmus.size() > 1) {
    std::map<std::string, std::vector<std::string>> by_event;
    for (const pfm::ActivePmu* pmu : core_pmus) {
      for (const pfm::EventDesc& event : pmu->table->events) {
        by_event[event.name].push_back(pmu->table->pfm_name);
      }
    }
    std::printf("\n--- events NOT available on every core type ---\n");
    bool any = false;
    for (const auto& [event, pmus] : by_event) {
      if (pmus.size() == core_pmus.size()) continue;
      any = true;
      std::printf("  %-24s only on:", event.c_str());
      for (const std::string& pmu : pmus) std::printf(" %s", pmu.c_str());
      std::printf("\n");
    }
    if (!any) std::printf("  (none)\n");
  }
  std::printf("\n%d native events total\n", total);
  return 0;
}
