// papi_native_avail equivalent: list every native event of every active
// PMU on a machine, flagging which core types provide each event name —
// the listing that makes per-core-type availability differences (like
// topdown being P-core-only) visible to users. The rendering lives in
// papi/avail_report.cpp so the golden tests cover it byte-exactly.
//
//   papi_native_avail [--machine raptorlake|orangepi|xeon|tritype]
#include <cstdio>
#include <string>

#include "cpumodel/machine.hpp"
#include "papi/avail_report.hpp"
#include "pfm/pfmlib.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

using namespace hetpapi;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string_view(argv[i]) == "--machine") machine_name = argv[i + 1];
  }
  const auto preset = cpumodel::machine_preset_by_name(machine_name);
  if (!preset.has_value()) {
    std::fprintf(stderr, "unknown machine preset %s\n", machine_name.c_str());
    return 2;
  }
  const cpumodel::MachineSpec machine = *preset;
  simkernel::SimKernel kernel(machine);
  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  if (const Status s = pfmlib.initialize(host); !s.is_ok()) {
    std::fprintf(stderr, "pfm: %s\n", s.to_string().c_str());
    return 1;
  }
  const std::string report =
      papi::render_native_avail_report(pfmlib, machine.name);
  std::fputs(report.c_str(), stdout);
  return 0;
}
