// hetpapi_profile: the per-core-type hybrid sampling profiler CLI.
//
// Instruments a SimpleMOC-kernel-style workload with PAPI_overflow
// sampling on the chosen machine preset(s) and prints a flat hot-spot
// table split per core type, plus per-worker validation lines that
// reconcile the delivered samples against the stopped counter value and
// the simulator's exact ground truth.
//
// Stdout is deterministic: cells run (possibly in parallel, --threads)
// into per-cell slots and print in machine order, so the output is
// byte-identical at any --threads value — CI diffs --threads 1 against
// --threads 4 and against a committed golden table.
//
//   hetpapi_profile [--machine NAME]... [--event NAME] [--event-set N]
//                   [--period N] [--workers N] [--segments N]
//                   [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/multi_run.hpp"
#include "telemetry/profiler.hpp"

using namespace hetpapi;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--machine NAME]... [--event NAME] [--event-set N]\n"
               "          [--period N] [--workers N] [--segments N]\n"
               "          [--threads N]\n",
               argv0);
  std::exit(2);
}

long long parse_number(const char* argv0, const char* text) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') usage(argv0);
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> machines;
  telemetry::ProfileOptions base;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--machine" && next != nullptr) {
      machines.emplace_back(argv[++i]);
    } else if (arg == "--event" && next != nullptr) {
      base.event = argv[++i];
    } else if (arg == "--event-set" && next != nullptr) {
      base.event_set = static_cast<int>(parse_number(argv[0], argv[++i]));
    } else if (arg == "--period" && next != nullptr) {
      base.period =
          static_cast<std::uint64_t>(parse_number(argv[0], argv[++i]));
    } else if (arg == "--workers" && next != nullptr) {
      base.workers = static_cast<int>(parse_number(argv[0], argv[++i]));
    } else if (arg == "--segments" && next != nullptr) {
      base.moc.segments =
          static_cast<std::uint64_t>(parse_number(argv[0], argv[++i]));
    } else if (arg == "--threads" && next != nullptr) {
      threads = static_cast<std::size_t>(
          std::max(1LL, parse_number(argv[0], argv[++i])));
    } else {
      usage(argv[0]);
    }
  }
  if (machines.empty()) machines.push_back(base.machine);

  // One cell per machine; each owns its kernel/backend/library, so the
  // executor changes wall-clock only, never the science.
  struct CellSlot {
    Expected<telemetry::ProfileReport> report =
        make_error(StatusCode::kBug, "cell never ran");
  };
  std::vector<CellSlot> slots(machines.size());
  std::vector<telemetry::RunCell> cells;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    telemetry::ProfileOptions options = base;
    options.machine = machines[i];
    cells.push_back(telemetry::RunCell{
        "profile/" + machines[i], [options, &slots, i] {
          slots[i].report = telemetry::run_simplemoc_profile(options);
        }});
  }
  telemetry::MultiRunExecutor executor(threads);
  executor.execute(cells);

  bool all_ok = true;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (i > 0) std::printf("\n");
    if (!slots[i].report) {
      std::printf("hetpapi_profile machine=%s error=%s\n", machines[i].c_str(),
                  slots[i].report.status().to_string().c_str());
      all_ok = false;
      continue;
    }
    std::fputs(slots[i].report->table.c_str(), stdout);
    all_ok = all_ok && slots[i].report->validated;
  }
  return all_ok ? 0 : 1;
}
