// simperf record/report — sample-based profiling over the simulated
// kernel, in one shot: opens a sampling event per core PMU on every cpu
// (`perf record -a -e instructions`), runs an HPL workload, then prints
// a perf-report-style breakdown of where the samples landed — by core
// type, by cpu, and over time.
//
//   simperf_record [--machine raptorlake|orangepi]
//                  [--variant openblas|intel] [--n <size>]
//                  [--period <counts>]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "base/cli.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/hpl.hpp"

using namespace hetpapi;
using simkernel::CountKind;
using simkernel::PerfSubsystem;

int main(int argc, char** argv) {
  std::string machine_name = "raptorlake";
  std::string variant = "openblas";
  int n = 0;
  std::uint64_t period = 50'000'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--machine") machine_name = value;
    else if (flag == "--variant") variant = value;
    else if (flag == "--n") {
      n = static_cast<int>(cli::require_positive_int(flag, value));
    }
    else if (flag == "--period") {
      period = static_cast<std::uint64_t>(cli::require_positive_int(flag, value));
    }
  }
  const cpumodel::MachineSpec machine = machine_name == "orangepi"
                                            ? cpumodel::orangepi800_rk3399()
                                            : cpumodel::raptor_lake_i7_13700();
  if (n == 0) n = machine_name == "orangepi" ? 8192 : 20736;
  const int nb = machine_name == "orangepi" ? 128 : 192;

  simkernel::SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  config.perf.sample_ring_capacity = 1 << 20;
  simkernel::SimKernel kernel(machine, config);

  // One system-wide sampling event per cpu, bound to that cpu's PMU.
  std::vector<int> fds;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    const auto* pmu = kernel.pmus().core_pmu_for_cpu(cpu);
    simkernel::PerfEventAttr attr;
    attr.type = pmu->type_id;
    attr.config = static_cast<std::uint64_t>(CountKind::kInstructions);
    attr.sample_period = period;
    auto fd = kernel.perf_event_open(attr, -1, cpu, -1);
    if (!fd) {
      std::fprintf(stderr, "open cpu %d: %s\n", cpu,
                   fd.status().to_string().c_str());
      return 1;
    }
    fds.push_back(*fd);
  }

  // The profiled workload: all-core HPL.
  const workload::HplConfig hpl_config =
      variant == "intel" ? workload::HplConfig::intel(n, nb)
                         : workload::HplConfig::openblas(n, nb);
  std::vector<int> cpus;
  if (machine_name == "orangepi") {
    cpus = {0, 1, 2, 3, 4, 5};
  } else {
    cpus = machine.primary_threads_of_type(0);
    const auto e = machine.cpus_of_type(1);
    cpus.insert(cpus.end(), e.begin(), e.end());
  }
  workload::HplSimulation hpl(hpl_config, static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                 simkernel::CpuSet::of({cpus[i]}));
  }
  kernel.run_until_idle(std::chrono::seconds(3600));
  const double elapsed = kernel.now().seconds();

  // Collect and aggregate.
  std::vector<PerfSubsystem::SampleRecord> samples;
  std::uint64_t lost = 0;
  for (const int fd : fds) {
    auto drained = kernel.perf_read_samples(fd);
    if (drained) {
      samples.insert(samples.end(), drained->begin(), drained->end());
    }
    lost += kernel.perf_lost_samples(fd).value_or(0);
  }

  std::printf("simperf record: %zu samples (%llu lost), period %llu, "
              "workload %s HPL N=%d on %s, %.1f s\n\n",
              samples.size(), static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(period), variant.c_str(), n,
              machine.name.c_str(), elapsed);

  // Report 1: by core type (the hybrid headline).
  std::map<int, std::uint64_t> by_type;
  for (const auto& sample : samples) by_type[sample.core_type] += 1;
  TextTable type_table({"core type", "samples", "share"});
  for (const auto& [type, count] : by_type) {
    type_table.add_row(
        {machine.core_types[static_cast<std::size_t>(type)].name,
         std::to_string(count),
         str_format("%.1f%%",
                    100.0 * static_cast<double>(count) /
                        static_cast<double>(samples.size()))});
  }
  std::printf("%s\n", type_table.render().c_str());

  // Report 2: hottest cpus.
  std::map<int, std::uint64_t> by_cpu;
  for (const auto& sample : samples) by_cpu[sample.cpu] += 1;
  std::printf("samples by cpu:");
  for (const auto& [cpu, count] : by_cpu) {
    std::printf(" cpu%d:%llu", cpu, static_cast<unsigned long long>(count));
  }
  std::printf("\n\n");

  // Report 3: 10-bucket timeline per core type.
  const int buckets = 10;
  std::vector<std::uint64_t> timeline_p(buckets);
  std::vector<std::uint64_t> timeline_e(buckets);
  for (const auto& sample : samples) {
    const double t = static_cast<double>(sample.time_ns) / 1e9;
    int bucket = static_cast<int>(t / elapsed * buckets);
    bucket = std::min(bucket, buckets - 1);
    (sample.core_type == 0 ? timeline_p : timeline_e)
        [static_cast<std::size_t>(bucket)] += 1;
  }
  std::printf("timeline (%d buckets of %.1f s): big/P samples then "
              "little/E samples\n",
              buckets, elapsed / buckets);
  for (int b = 0; b < buckets; ++b) {
    std::printf("  t=%5.1fs  %8llu  %8llu\n", elapsed * b / buckets,
                static_cast<unsigned long long>(
                    timeline_p[static_cast<std::size_t>(b)]),
                static_cast<unsigned long long>(
                    timeline_e[static_cast<std::size_t>(b)]));
  }
  return 0;
}
