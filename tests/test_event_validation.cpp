// The counter-validation harness (§IV-F generalized): every event
// definition measured on every machine preset must equal the
// simulator's exact ground truth — on every core type, including the
// three-PMU hybrids. Also proves the harness *can* fail (a deliberately
// skewed configuration produces violations) so a green sweep means
// something.
#include <gtest/gtest.h>

#include <set>

#include "cpumodel/machine.hpp"
#include "validation/harness.hpp"

namespace hetpapi {
namespace {

using validation::CaseResult;
using validation::Options;
using validation::Report;

class ValidationSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ValidationSweepTest, EveryEventMatchesGroundTruthExactly) {
  const auto machine = cpumodel::machine_preset_by_name(GetParam());
  ASSERT_TRUE(machine.has_value());

  const Report report = validation::validate_machine(*machine);
  ASSERT_FALSE(report.cases.empty());
  EXPECT_EQ(report.failures(), 0u)
      << validation::render_summary(GetParam(), report);

  // The sweep covered every core type of the model and all three
  // built-in workloads.
  std::set<std::string> types;
  std::set<std::string> workloads;
  for (const CaseResult& c : report.cases) {
    types.insert(c.core_type);
    workloads.insert(c.workload);
  }
  EXPECT_EQ(types.size(), machine->core_types.size());
  EXPECT_EQ(workloads.size(), validation::default_workloads().size());
}

INSTANTIATE_TEST_SUITE_P(
    AllMachinePresets, ValidationSweepTest,
    ::testing::ValuesIn(cpumodel::machine_preset_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(ValidationHarnessTest, DetectsLegacyPresetPolicyMiscounting) {
  // The legacy default-PMU-only policy resolves presets on the P PMU
  // alone, so work pinned to any other core type goes uncounted — the
  // harness must flag that against the exact truth, otherwise the green
  // sweep above proves nothing.
  Options opts;
  opts.preset_policy = papi::PresetPolicy::kDefaultPmuOnly;
  opts.workloads = {"compute"};
  const Report report = validation::validate_machine(
      cpumodel::raptor_lake_i7_13700(), opts);
  ASSERT_FALSE(report.cases.empty());
  EXPECT_GT(report.failures(), 0u);
}

TEST(ValidationHarnessTest, CallOverheadIsConservedExactly) {
  // §V-5: caliper overhead executes as thread work, so the counters and
  // the ground truth agree even with a large per-call charge.
  Options opts;
  opts.call_overhead_instructions = 900;
  opts.workloads = {"branchy"};
  const Report report = validation::validate_machine(
      cpumodel::meteor_lake_like(), opts);
  ASSERT_FALSE(report.cases.empty());
  EXPECT_EQ(report.failures(), 0u)
      << validation::render_summary("meteorlake", report);
}

TEST(ValidationHarnessTest, FailureNamesEventModelAndCoreType) {
  Report report;
  CaseResult fail;
  fail.machine = "meteor_lake_like";
  fail.workload = "memory";
  fail.event = "mtl_lpe::LLC_MISSES";
  fail.core_type = "LP-E-core";
  fail.expected = 41;
  fail.actual = 40;
  fail.pass = false;
  report.cases.push_back(fail);

  const std::string summary = validation::render_summary("meteorlake", report);
  EXPECT_NE(summary.find("mtl_lpe::LLC_MISSES"), std::string::npos);
  EXPECT_NE(summary.find("meteor_lake_like"), std::string::npos);
  EXPECT_NE(summary.find("LP-E-core"), std::string::npos);

  const std::string junit = validation::render_junit({{"meteorlake", report}});
  EXPECT_NE(junit.find("<testsuite name=\"validate_events.meteorlake\""),
            std::string::npos);
  EXPECT_NE(junit.find("failures=\"1\""), std::string::npos);
  EXPECT_NE(junit.find("expected 41, got 40"), std::string::npos);
}

TEST(ValidationHarnessTest, JunitEscapesAndCountsCleanReports) {
  Report report;
  CaseResult ok;
  ok.machine = "m<&>";
  ok.workload = "w";
  ok.event = "e\"q\"";
  ok.core_type = "t";
  ok.pass = true;
  report.cases.push_back(ok);

  const std::string junit = validation::render_junit({{"m<&>", report}});
  EXPECT_NE(junit.find("validate_events.m&lt;&amp;&gt;"), std::string::npos);
  EXPECT_NE(junit.find("e&quot;q&quot;"), std::string::npos);
  EXPECT_NE(junit.find("tests=\"1\" failures=\"0\""), std::string::npos);
}

}  // namespace
}  // namespace hetpapi
