// User preset definitions (§V-2's PAPI_events.csv replacement): parsing,
// validation, and per-PMU-aware resolution including DERIVED_SUB and the
// missing-on-one-core-type failure the paper warns about.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/preset_defs.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi::papi {
namespace {

using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

constexpr const char* kGoodDefinitions = R"(
# custom presets keyed by PMU, not family/model
CPU,adl_glc
PRESET,PAPI_TOT_INS,NATIVE,INST_RETIRED:ANY
PRESET,PAPI_GOOD_BR,DERIVED_SUB,BR_INST_RETIRED:ALL_BRANCHES,BR_MISP_RETIRED:ALL_BRANCHES
PRESET,PAPI_MEM_OPS,DERIVED_ADD,LONGEST_LAT_CACHE:REFERENCE,LONGEST_LAT_CACHE:MISS

CPU,adl_grt
PRESET,PAPI_TOT_INS,NATIVE,INST_RETIRED:ANY
PRESET,PAPI_GOOD_BR,DERIVED_SUB,BR_INST_RETIRED:ALL_BRANCHES,BR_MISP_RETIRED:ALL_BRANCHES
PRESET,PAPI_MEM_OPS,DERIVED_ADD,LONGEST_LAT_CACHE:REFERENCE,LONGEST_LAT_CACHE:MISS
)";

TEST(PresetDefsParser, ParsesSectionsAndDerivations) {
  auto file = parse_preset_definitions(kGoodDefinitions);
  ASSERT_TRUE(file.has_value()) << file.status().to_string();
  ASSERT_EQ(file->sections.size(), 2u);
  const CustomPresetDef* def = file->find("adl_glc", "PAPI_GOOD_BR");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->op, CustomPresetDef::Op::kDerivedSub);
  ASSERT_EQ(def->events.size(), 2u);
  EXPECT_EQ(def->events[0], "BR_INST_RETIRED:ALL_BRANCHES");
  EXPECT_EQ(file->preset_names().size(), 3u);
  EXPECT_EQ(file->find("adl_glc", "PAPI_NOPE"), nullptr);
  EXPECT_EQ(file->find("nonexistent", "PAPI_TOT_INS"), nullptr);
}

TEST(PresetDefsParser, RejectsMalformedInput) {
  // PRESET before any CPU section.
  EXPECT_FALSE(
      parse_preset_definitions("PRESET,PAPI_X,NATIVE,EV").has_value());
  // Unknown derivation.
  EXPECT_FALSE(
      parse_preset_definitions("CPU,a\nPRESET,PAPI_X,MAGIC,EV").has_value());
  // NATIVE with two events.
  EXPECT_FALSE(
      parse_preset_definitions("CPU,a\nPRESET,PAPI_X,NATIVE,EV,EV2")
          .has_value());
  // DERIVED_SUB with one event.
  EXPECT_FALSE(
      parse_preset_definitions("CPU,a\nPRESET,PAPI_X,DERIVED_SUB,EV")
          .has_value());
  // Name without PAPI_ prefix.
  EXPECT_FALSE(
      parse_preset_definitions("CPU,a\nPRESET,X,NATIVE,EV").has_value());
  // Duplicate within a section.
  EXPECT_FALSE(parse_preset_definitions(
                   "CPU,a\nPRESET,PAPI_X,NATIVE,EV\nPRESET,PAPI_X,NATIVE,EV")
                   .has_value());
  // Prefixed event names are rejected (the section names the PMU).
  EXPECT_FALSE(
      parse_preset_definitions("CPU,a\nPRESET,PAPI_X,NATIVE,b::EV")
          .has_value());
  // Unknown record type.
  EXPECT_FALSE(parse_preset_definitions("WHAT,ever").has_value());
  // Error messages carry the line number.
  const auto bad = parse_preset_definitions("CPU,a\n\nPRESET,PAPI_X,MAGIC,E");
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

TEST(PresetDefsParser, CommentsAndWhitespaceAreIgnored) {
  auto file = parse_preset_definitions(
      "  # leading comment\n"
      "CPU, adl_glc   # trailing comment\n"
      "PRESET, PAPI_X , NATIVE , INST_RETIRED:ANY\n");
  ASSERT_TRUE(file.has_value()) << file.status().to_string();
  EXPECT_NE(file->find("adl_glc", "PAPI_X"), nullptr);
}

class PresetDefsLibraryTest : public ::testing::Test {
 protected:
  PresetDefsLibraryTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {
    PhaseSpec phase;
    phase.branches_per_kinstr = 100.0;
    phase.branch_miss_ratio = 0.05;
    phase.llc_refs_per_kinstr = 10.0;
    phase.llc_miss_ratio = 0.4;
    tid_ = kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, 100'000'000),
        CpuSet::of({0}));
    backend_.set_default_target(tid_);
    LibraryConfig config;
    config.call_overhead_instructions = 0;
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value());
    lib_ = std::move(*lib);
  }

  SimKernel kernel_;
  papi::SimBackend backend_;
  std::unique_ptr<Library> lib_;
  Tid tid_ = simkernel::kInvalidTid;
};

TEST_F(PresetDefsLibraryTest, LoadValidatesAgainstActiveTables) {
  EXPECT_TRUE(lib_->load_preset_definitions(kGoodDefinitions).is_ok());
  EXPECT_EQ(lib_->custom_preset_names().size(), 3u);
  // A definition referencing a nonexistent event fails at load time.
  const Status bad = lib_->load_preset_definitions(
      "CPU,adl_glc\nPRESET,PAPI_X,NATIVE,NO_SUCH_EVENT\n");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_F(PresetDefsLibraryTest, CustomDerivedSubMeasuresCorrectly) {
  ASSERT_TRUE(lib_->load_preset_definitions(kGoodDefinitions).is_ok());
  auto set = lib_->create_eventset();
  ASSERT_TRUE(lib_->add_event(*set, "PAPI_GOOD_BR").is_ok());
  auto info = lib_->eventset_info(*set);
  ASSERT_EQ(info->size(), 1u);
  EXPECT_EQ((*info)[0].native_names.size(), 4u)
      << "2 events x 2 core PMUs";

  ASSERT_TRUE(lib_->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib_->stop(*set);
  ASSERT_TRUE(values.has_value());
  const auto* truth = kernel_.ground_truth(tid_);
  const auto expected = static_cast<long long>(
      truth->total().branches - truth->total().branch_misses);
  EXPECT_EQ((*values)[0], expected)
      << "correctly-predicted branches = retired - mispredicted";
}

TEST_F(PresetDefsLibraryTest, CustomDefinitionOverridesBuiltin) {
  // Redefine PAPI_TOT_INS via the file: same semantics here, but the
  // expansion must come from the file (NATIVE on both sections).
  ASSERT_TRUE(lib_->load_preset_definitions(kGoodDefinitions).is_ok());
  auto set = lib_->create_eventset();
  ASSERT_TRUE(lib_->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib_->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib_->stop(*set);
  const auto* truth = kernel_.ground_truth(tid_);
  EXPECT_EQ(static_cast<std::uint64_t>((*values)[0]),
            truth->total().instructions);
}

TEST_F(PresetDefsLibraryTest, MissingSectionForOneCoreTypeFails) {
  // Defined only for the P-core PMU: resolving on a hybrid machine must
  // fail rather than silently undercount (§V-2's trap).
  ASSERT_TRUE(lib_->load_preset_definitions(
                      "CPU,adl_glc\n"
                      "PRESET,PAPI_P_ONLY,NATIVE,INST_RETIRED:ANY\n")
                  .is_ok());
  auto set = lib_->create_eventset();
  const Status status = lib_->add_event(*set, "PAPI_P_ONLY");
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotPreset);
  EXPECT_NE(status.message().find("adl_grt"), std::string::npos)
      << "error names the uncovered PMU";
}

TEST(PresetDefsHomogeneous, SingleSectionSufficesOnTraditionalMachines) {
  SimKernel kernel(cpumodel::homogeneous_xeon());
  papi::SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());
  ASSERT_TRUE((*lib)
                  ->load_preset_definitions(
                      "CPU,skx\nPRESET,PAPI_MY_INS,NATIVE,INST_RETIRED:ANY\n")
                  .is_ok());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_MY_INS").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  EXPECT_GE((*values)[0], 10'000'000);
}

}  // namespace
}  // namespace hetpapi::papi
