// Simulated perf_event subsystem: open/group/ioctl/read semantics,
// per-core-type counting, multiplexing, rdpmc — the kernel contract the
// paper's PAPI changes are written against.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using cpumodel::MachineSpec;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr attr_for(std::uint32_t type, CountKind kind,
                       bool disabled = false) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(kind);
  attr.disabled = disabled;
  return attr;
}

class PerfEventsTest : public ::testing::Test {
 protected:
  PerfEventsTest() : kernel_(cpumodel::raptor_lake_i7_13700()) {
    const auto* p = kernel_.pmus().find_by_name("cpu_core");
    const auto* e = kernel_.pmus().find_by_name("cpu_atom");
    EXPECT_NE(p, nullptr);
    EXPECT_NE(e, nullptr);
    p_type_ = p->type_id;
    e_type_ = e->type_id;
  }

  Tid spawn_work(std::uint64_t instructions, const CpuSet& affinity) {
    PhaseSpec phase;
    phase.llc_refs_per_kinstr = 5.0;
    phase.llc_miss_ratio = 0.3;
    return kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions), affinity);
  }

  SimKernel kernel_;
  std::uint32_t p_type_ = 0;
  std::uint32_t e_type_ = 0;
};

TEST_F(PerfEventsTest, OpenRejectsUnknownPmuType) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  auto fd = kernel_.perf_event_open(attr_for(999, CountKind::kInstructions),
                                    tid, -1, -1);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kNotFound);
}

TEST_F(PerfEventsTest, OpenRejectsOutOfRangeConfig) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  PerfEventAttr attr;
  attr.type = p_type_;
  attr.config = 10000;
  auto fd = kernel_.perf_event_open(attr, tid, -1, -1);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PerfEventsTest, TopdownExistsOnlyOnPCorePmu) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  auto on_p = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kTopdownSlots), tid, -1, -1);
  EXPECT_TRUE(on_p.has_value());
  auto on_e = kernel_.perf_event_open(
      attr_for(e_type_, CountKind::kTopdownSlots), tid, -1, -1);
  ASSERT_FALSE(on_e.has_value());
  EXPECT_EQ(on_e.status().code(), StatusCode::kNotFound);
}

TEST_F(PerfEventsTest, GroupsCannotSpanPmus) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  auto leader = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions, true), tid, -1, -1);
  ASSERT_TRUE(leader.has_value());
  auto sibling = kernel_.perf_event_open(
      attr_for(e_type_, CountKind::kInstructions), tid, -1, *leader);
  ASSERT_FALSE(sibling.has_value());
  EXPECT_EQ(sibling.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PerfEventsTest, SoftwareEventsMayJoinHardwareGroups) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  auto leader = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions, true), tid, -1, -1);
  ASSERT_TRUE(leader.has_value());
  auto sw = kernel_.perf_event_open(
      attr_for(simkernel::kPerfTypeSoftware, CountKind::kContextSwitches),
      tid, -1, *leader);
  EXPECT_TRUE(sw.has_value());
}

TEST_F(PerfEventsTest, RaplEventsAreCpuScopedOnly) {
  const Tid tid = spawn_work(1000, CpuSet::all(kernel_.machine().num_cpus()));
  const auto* rapl = kernel_.pmus().find_by_name("power");
  ASSERT_NE(rapl, nullptr);
  auto task_bound = kernel_.perf_event_open(
      attr_for(rapl->type_id, CountKind::kEnergyPkgUj), tid, -1, -1);
  ASSERT_FALSE(task_bound.has_value());
  EXPECT_EQ(task_bound.status().code(), StatusCode::kInvalidArgument);

  auto cpu_bound = kernel_.perf_event_open(
      attr_for(rapl->type_id, CountKind::kEnergyPkgUj), -1, 0, -1);
  EXPECT_TRUE(cpu_bound.has_value());
}

TEST_F(PerfEventsTest, CpuBoundCoreEventRejectsForeignCpu) {
  // cpu 16 is an E-core; binding a cpu_core event there must fail.
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), -1, 16, -1);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PerfEventsTest, CountsMatchGroundTruthOnPinnedCore) {
  const Tid tid = spawn_work(5'000'000, CpuSet::of({0}));  // P-core cpu0
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto value = kernel_.perf_read(*fd);
  ASSERT_TRUE(value.has_value());
  const auto* truth = kernel_.ground_truth(tid);
  ASSERT_NE(truth, nullptr);
  EXPECT_EQ(value->value, truth->per_type[0].instructions);
  EXPECT_EQ(value->value, 5'000'000u);
}

TEST_F(PerfEventsTest, EventOnlyCountsOnMatchingCoreType) {
  // Pin to an E-core; a cpu_core event must read zero, a cpu_atom event
  // must read everything.
  const Tid tid = spawn_work(3'000'000, CpuSet::of({20}));
  auto p_fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  auto e_fd = kernel_.perf_event_open(
      attr_for(e_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(p_fd.has_value());
  ASSERT_TRUE(e_fd.has_value());
  kernel_.run_until_idle(std::chrono::seconds(10));
  EXPECT_EQ(kernel_.perf_read(*p_fd)->value, 0u);
  EXPECT_EQ(kernel_.perf_read(*e_fd)->value, 3'000'000u);
}

TEST_F(PerfEventsTest, MigratingThreadSplitsCountsAcrossPmus) {
  // Separate kernel with an aggressive load balancer so the (short)
  // workload migrates many times.
  SimKernel::Config config;
  config.sched.migration_rate_hz = 300.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  const Tid tid =
      kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 500'000'000),
                   CpuSet::all(kernel.machine().num_cpus()));
  auto p_fd = kernel.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  auto e_fd = kernel.perf_event_open(
      attr_for(e_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(p_fd.has_value());
  ASSERT_TRUE(e_fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(60));
  const std::uint64_t p = kernel.perf_read(*p_fd)->value;
  const std::uint64_t e = kernel.perf_read(*e_fd)->value;
  EXPECT_EQ(p + e, 500'000'000u) << "conservation across PMUs";
  EXPECT_GT(p, 0u) << "thread should visit P cores";
  EXPECT_GT(e, 0u) << "thread should visit E cores";
  EXPECT_GT(kernel.ground_truth(tid)->migrations, 0u);
}

TEST_F(PerfEventsTest, DisableFreezesAndResetZeroesCount) {
  // Enough work that the thread stays alive across the whole test.
  const Tid tid = spawn_work(20'000'000'000ULL, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel_.run_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kDisable).is_ok());
  const std::uint64_t frozen = kernel_.perf_read(*fd)->value;
  EXPECT_GT(frozen, 0u);
  kernel_.run_for(std::chrono::milliseconds(20));
  EXPECT_EQ(kernel_.perf_read(*fd)->value, frozen) << "disabled => frozen";
  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kReset).is_ok());
  EXPECT_EQ(kernel_.perf_read(*fd)->value, 0u);
  // Re-enable: counting resumes from zero.
  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kEnable).is_ok());
  kernel_.run_for(std::chrono::milliseconds(20));
  EXPECT_GT(kernel_.perf_read(*fd)->value, 0u);
}

TEST_F(PerfEventsTest, GroupReadReturnsLeaderThenSiblingsInOrder) {
  const Tid tid = spawn_work(5'000'000, CpuSet::of({0}));
  auto leader = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions, true), tid, -1, -1);
  auto cyc = kernel_.perf_event_open(attr_for(p_type_, CountKind::kCycles),
                                     tid, -1, *leader);
  auto br = kernel_.perf_event_open(attr_for(p_type_, CountKind::kBranches),
                                    tid, -1, *leader);
  ASSERT_TRUE(leader.has_value());
  ASSERT_TRUE(cyc.has_value());
  ASSERT_TRUE(br.has_value());
  ASSERT_TRUE(kernel_
                  .perf_ioctl(*leader, PerfIoctl::kEnable,
                              simkernel::kIocFlagGroup)
                  .is_ok());
  kernel_.run_until_idle(std::chrono::seconds(5));
  auto values = kernel_.perf_read_group(*leader);
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 3u);
  const auto* truth = kernel_.ground_truth(tid);
  EXPECT_EQ((*values)[0].value, truth->per_type[0].instructions);
  EXPECT_EQ((*values)[1].value, truth->per_type[0].cycles);
  EXPECT_EQ((*values)[2].value, truth->per_type[0].branches);
}

TEST_F(PerfEventsTest, GroupReadRequiresLeaderFd) {
  const Tid tid = spawn_work(1'000'000, CpuSet::of({0}));
  auto leader = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions, true), tid, -1, -1);
  auto sib = kernel_.perf_event_open(attr_for(p_type_, CountKind::kCycles),
                                     tid, -1, *leader);
  auto result = kernel_.perf_read_group(*sib);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PerfEventsTest, MultiplexingScalesEstimatesWithinTolerance) {
  // Open more singleton groups than the P-core PMU's 8 GP counters (the
  // LLC/branch/stall kinds are not fixed-counter backed). With a steady
  // workload the scaled estimates must land near the true totals. The
  // workload must span many 1 ms rotation periods for every group to get
  // counter residency.
  const Tid tid = spawn_work(20'000'000'000ULL, CpuSet::of({0}));
  const CountKind kinds[] = {
      CountKind::kLlcReferences, CountKind::kLlcMisses,
      CountKind::kBranches,      CountKind::kBranchMisses,
      CountKind::kStalledCycles, CountKind::kFlopsDp,
  };
  std::vector<int> fds;
  for (int copy = 0; copy < 3; ++copy) {  // 18 GP events > 8 counters
    for (CountKind kind : kinds) {
      auto fd = kernel_.perf_event_open(attr_for(p_type_, kind), tid, -1, -1);
      ASSERT_TRUE(fd.has_value());
      fds.push_back(*fd);
    }
  }
  kernel_.run_until_idle(std::chrono::seconds(60));
  const auto* truth = kernel_.ground_truth(tid);
  // Every copy of the llc-references event should estimate the same
  // quantity; check scaled values against ground truth.
  for (std::size_t i = 0; i < fds.size(); ++i) {
    auto value = kernel_.perf_read(fds[i]);
    ASSERT_TRUE(value.has_value());
    EXPECT_LT(value->time_running_ns, value->time_enabled_ns)
        << "event " << i << " should have been rotated out some of the time";
    const std::uint64_t expected =
        truth->per_type[0].get(kinds[i % std::size(kinds)]);
    const double scaled = value->scaled();
    EXPECT_NEAR(scaled, static_cast<double>(expected),
                0.1 * static_cast<double>(expected) + 1000.0)
        << "event " << i;
  }
}

TEST_F(PerfEventsTest, PinnedEventNeverRotatesOut) {
  const Tid tid = spawn_work(40'000'000, CpuSet::of({0}));
  PerfEventAttr pinned = attr_for(p_type_, CountKind::kLlcReferences);
  pinned.pinned = true;
  auto pinned_fd = kernel_.perf_event_open(pinned, tid, -1, -1);
  ASSERT_TRUE(pinned_fd.has_value());
  for (int i = 0; i < 12; ++i) {
    auto fd = kernel_.perf_event_open(
        attr_for(p_type_, CountKind::kBranchMisses), tid, -1, -1);
    ASSERT_TRUE(fd.has_value());
  }
  kernel_.run_until_idle(std::chrono::seconds(30));
  auto value = kernel_.perf_read(*pinned_fd);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->time_enabled_ns, value->time_running_ns)
      << "pinned events must stay resident";
}

TEST_F(PerfEventsTest, RdpmcWorksOnlyWhileResident) {
  const Tid tid = spawn_work(10'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel_.run_for(std::chrono::milliseconds(10));
  auto fast = kernel_.perf_rdpmc(*fd);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, kernel_.perf_read(*fd)->value);

  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kDisable).is_ok());
  auto disabled = kernel_.perf_rdpmc(*fd);
  ASSERT_FALSE(disabled.has_value());
  EXPECT_EQ(disabled.status().code(), StatusCode::kNotRunning);
}

TEST_F(PerfEventsTest, RdpmcRejectsRaplEvents) {
  const auto* rapl = kernel_.pmus().find_by_name("power");
  auto fd = kernel_.perf_event_open(
      attr_for(rapl->type_id, CountKind::kEnergyPkgUj), -1, 0, -1);
  ASSERT_TRUE(fd.has_value());
  auto fast = kernel_.perf_rdpmc(*fd);
  ASSERT_FALSE(fast.has_value());
  EXPECT_EQ(fast.status().code(), StatusCode::kNotSupported);
}

TEST_F(PerfEventsTest, ClosingLeaderPromotesSiblings) {
  const Tid tid = spawn_work(10'000'000, CpuSet::of({0}));
  auto leader = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions, true), tid, -1, -1);
  auto sib = kernel_.perf_event_open(attr_for(p_type_, CountKind::kCycles),
                                     tid, -1, *leader);
  ASSERT_TRUE(leader.has_value());
  ASSERT_TRUE(sib.has_value());
  ASSERT_TRUE(kernel_.perf_close(*leader).is_ok());
  // The sibling lives on as its own singleton group.
  kernel_.run_for(std::chrono::milliseconds(10));
  auto value = kernel_.perf_read(*sib);
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(value->value, 0u);
  EXPECT_TRUE(kernel_.perf_close(*sib).is_ok());
  EXPECT_EQ(kernel_.perf().open_event_count(), 0u);
}

TEST_F(PerfEventsTest, SoftwareEventsCountSwitchesAndMigrations) {
  // Two threads sharing one cpu: context switches must occur.
  const CpuSet one_cpu = CpuSet::of({0});
  const Tid a = spawn_work(20'000'000, one_cpu);
  const Tid b = spawn_work(20'000'000, one_cpu);
  (void)b;
  auto cs = kernel_.perf_event_open(
      attr_for(simkernel::kPerfTypeSoftware, CountKind::kContextSwitches), a,
      -1, -1);
  auto clock = kernel_.perf_event_open(
      attr_for(simkernel::kPerfTypeSoftware, CountKind::kTaskClockNs), a, -1,
      -1);
  ASSERT_TRUE(cs.has_value());
  ASSERT_TRUE(clock.has_value());
  kernel_.run_until_idle(std::chrono::seconds(60));
  EXPECT_GT(kernel_.perf_read(*cs)->value, 0u);
  const auto* truth = kernel_.ground_truth(a);
  EXPECT_EQ(kernel_.perf_read(*cs)->value, truth->context_switches);
  EXPECT_EQ(kernel_.perf_read(*clock)->value,
            static_cast<std::uint64_t>(truth->total_cpu_time.count()));
}

TEST_F(PerfEventsTest, RaplEnergyGrowsUnderLoad) {
  const auto* rapl = kernel_.pmus().find_by_name("power");
  auto fd = kernel_.perf_event_open(
      attr_for(rapl->type_id, CountKind::kEnergyPkgUj), -1, 0, -1);
  ASSERT_TRUE(fd.has_value());
  spawn_work(200'000'000, CpuSet::of({0}));
  kernel_.run_for(std::chrono::seconds(2));
  const std::uint64_t after_load = kernel_.perf_read(*fd)->value;
  // At least ~10 W for 2 s => 2e7 uJ.
  EXPECT_GT(after_load, 10'000'000u);
}

}  // namespace
}  // namespace hetpapi
