// Chaos suite for the deterministic fault injector: a fault-kind x
// cpu-model x API-surface matrix plus a seeded randomized soak of the
// monitored-run pipeline. The invariants under EVERY profile and seed:
// no crash, zero leaked fds at teardown (the injector's ledger is the
// oracle), a self-consistent health summary, and bit-identical outcomes
// for identical seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "workload/hpl.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::FaultInjectingBackend;
using papi::FaultProfile;
using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

cpumodel::MachineSpec machine_by_name(const std::string& name) {
  return name == "orangepi" ? cpumodel::orangepi800_rk3399()
                            : cpumodel::raptor_lake_i7_13700();
}

/// Drive the whole EventSet API surface tolerantly (every call may
/// fail under injection — that is the point) and append a textual
/// outcome of each step to `trace`, the determinism fingerprint.
void exercise_api_surface(Library& lib, SimKernel& kernel, Tid tid,
                          std::ostringstream& trace) {
  const auto record = [&trace](std::string_view step, const Status& s) {
    trace << step << "=" << (s.is_ok() ? "ok" : to_string(s.code())) << ";";
  };
  auto set = lib.create_eventset();
  ASSERT_TRUE(set.has_value());
  record("attach", lib.attach(*set, tid));
  for (const char* event : {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_BR_INS"}) {
    record(event, lib.add_event(*set, event));
  }
  record("start", lib.start(*set));
  kernel.run_for(std::chrono::milliseconds(200));
  if (const auto values = lib.read(*set)) {
    trace << "read=ok[";
    for (const long long v : *values) trace << v << ",";
    trace << "];";
  } else {
    record("read", values.status());
  }
  if (const auto checked = lib.read_checked(*set)) {
    trace << "read_checked=ok degraded=" << checked->degraded << "[";
    for (std::size_t i = 0; i < checked->values.size(); ++i) {
      const bool bad = i < checked->value_degraded.size() &&
                       checked->value_degraded[i] != 0;
      trace << (bad ? -1 : checked->values[i]) << ",";
    }
    trace << "];";
  } else {
    record("read_checked", checked.status());
  }
  if (const auto qualified = lib.read_qualified(*set)) {
    trace << "read_qualified=ok[";
    for (const papi::QualifiedReading& reading : *qualified) {
      trace << reading.total << "/" << reading.degraded << ",";
    }
    trace << "];";
  } else {
    record("read_qualified", qualified.status());
  }
  record("reset", lib.reset(*set));
  kernel.run_for(std::chrono::milliseconds(100));
  if (const auto stopped = lib.stop(*set)) {
    trace << "stop=ok[";
    for (const long long v : *stopped) trace << v << ",";
    trace << "];";
  } else {
    record("stop", stopped.status());
  }
  record("destroy", lib.destroy_eventset(*set));
}

/// One full library lifetime under a profile/seed; returns the outcome
/// trace. Asserts the leak invariant at teardown.
std::string run_scenario(const std::string& machine_name,
                         const std::string& profile_name, std::uint64_t seed,
                         bool degrade_presets) {
  SimKernel kernel(machine_by_name(machine_name));
  SimBackend backend(&kernel);
  auto profile = FaultProfile::named(profile_name);
  EXPECT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&backend, *profile, seed);

  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));

  std::ostringstream trace;
  {
    LibraryConfig config;
    config.degrade_partial_presets = degrade_presets;
    auto lib = Library::init(&injector, config);
    if (!lib.has_value()) {
      // Heavy open-failure profiles can refuse even init's probe opens;
      // that must still be a clean, leak-free failure.
      trace << "init=" << to_string(lib.status().code()) << ";";
    } else {
      trace << "init=ok;";
      exercise_api_surface(**lib, kernel, tid, trace);
    }
  }
  EXPECT_EQ(injector.open_fd_count(), 0u)
      << machine_name << "/" << profile_name << " seed " << seed
      << " leaked: " << testing::PrintToString(injector.leaked_fds());
  EXPECT_EQ(backend.open_fd_count(), 0u);
  trace << "faults=" << injector.stats().total_injected() << ";";
  return trace.str();
}

TEST(FaultInjection, NamedProfilesRoundTripAndUnknownIsRejected) {
  const auto names = FaultProfile::profile_names();
  ASSERT_GE(names.size(), 6u);
  for (const std::string& name : names) {
    const auto profile = FaultProfile::named(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  const auto unknown = FaultProfile::named("not-a-profile");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjection, MatrixNoLeaksOnAnyProfileMachineOrSeed) {
  for (const char* machine : {"raptorlake", "orangepi"}) {
    for (const std::string& profile : FaultProfile::profile_names()) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        SCOPED_TRACE(std::string(machine) + "/" + profile + "/" +
                     std::to_string(seed));
        (void)run_scenario(machine, profile, seed, /*degrade_presets=*/true);
        (void)run_scenario(machine, profile, seed, /*degrade_presets=*/false);
      }
    }
  }
}

TEST(FaultInjection, SameSeedSameOutcomeTrace) {
  for (const std::string& profile : FaultProfile::profile_names()) {
    for (const std::uint64_t seed : {7ull, 99ull}) {
      const std::string first = run_scenario("raptorlake", profile, seed, true);
      const std::string second =
          run_scenario("raptorlake", profile, seed, true);
      EXPECT_EQ(first, second) << profile << " seed " << seed;
    }
  }
}

TEST(FaultInjection, NoneProfileIsTransparent) {
  const std::string injected = run_scenario("raptorlake", "none", 5, false);
  EXPECT_NE(injected.find("faults=0;"), std::string::npos) << injected;
  EXPECT_NE(injected.find("init=ok;"), std::string::npos);
  EXPECT_NE(injected.find("start=ok;"), std::string::npos) << injected;
}

TEST(FaultInjection, TransientReadBurstsAreRiddenOutByBoundedRetry) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  auto profile = FaultProfile::named("transient-read");
  ASSERT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&backend, *profile, 11);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 500'000'000), CpuSet::of({0}));

  auto lib = Library::init(&injector);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());

  // The tolerant read path never fails outright on a transient: either
  // the bounded retry rides the burst out, or the slot is marked
  // degraded for that read.
  int degraded_reads = 0;
  for (int i = 0; i < 200; ++i) {
    kernel.run_for(std::chrono::milliseconds(5));
    const auto reading = (*lib)->read_checked(*set);
    ASSERT_TRUE(reading.has_value()) << reading.status().to_string();
    if (reading->degraded) ++degraded_reads;
  }
  EXPECT_GT(injector.stats().reads_injected_transient, 0u);
  // Burst (2) < retry budget (4): most transients are absorbed.
  EXPECT_LT(degraded_reads, 200);
  // stop() is strict (it returns the final values), so a burst that
  // outlives the retry budget fails the call and leaves the set
  // running — the PAPI contract is that the caller tries again.
  bool stopped = false;
  for (int i = 0; i < 20 && !stopped; ++i) {
    stopped = (*lib)->stop(*set).has_value();
  }
  ASSERT_TRUE(stopped);
  ASSERT_TRUE((*lib)->destroy_eventset(*set).is_ok());
  lib->reset();
  EXPECT_EQ(injector.open_fd_count(), 0u);
}

TEST(FaultInjection, FdPressureFailsCleanlyAndLedgerMatchesKernel) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  auto profile = FaultProfile::named("fd-pressure");
  ASSERT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&backend, *profile, 3);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));

  auto lib = Library::init(&injector);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  Status last = Status::ok();
  int added = 0;
  for (int i = 0; i < 12 && last.is_ok(); ++i) {
    last = (*lib)->add_event(*set, "PAPI_TOT_INS");
    if (last.is_ok()) ++added;
  }
  EXPECT_GT(added, 0);
  ASSERT_FALSE(last.is_ok()) << "the 6-fd cap must bite";
  EXPECT_EQ(last.code(), StatusCode::kNoMemory);
  // Rollback left exactly the surviving events' fds: ledger == kernel.
  EXPECT_EQ(injector.open_fd_count(), backend.open_fd_count());
  EXPECT_LE(injector.open_fd_count(), 6u);
  ASSERT_TRUE((*lib)->destroy_eventset(*set).is_ok());
  lib->reset();
  EXPECT_EQ(injector.open_fd_count(), 0u);
}

// ---------------------------------------------------------------------
// Seeded randomized soak of the monitored-run pipeline: the workload
// must finish and the telemetry series must stay complete under every
// profile, with a health summary that adds up and zero leaked fds.

telemetry::RunResult run_chaos_monitor(const std::string& profile,
                                       std::uint64_t seed) {
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  const workload::HplConfig hpl = workload::HplConfig::openblas(4096, 192);
  telemetry::MonitorConfig monitor;
  monitor.sample_period_s = 0.01;
  monitor.sample_events = {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_BR_INS"};
  monitor.fault_profile = profile;
  monitor.fault_seed = seed;
  return telemetry::run_monitored_hpl(kernel, hpl, {0, 2, 16, 17}, monitor);
}

void check_health_consistency(const telemetry::RunResult& result) {
  const telemetry::RunHealth& h = result.health;
  EXPECT_EQ(h.leaked_fds, 0u);
  EXPECT_LE(h.ticks_failed, h.ticks_attempted);
  EXPECT_LE(h.ticks_degraded, h.ticks_attempted);
  EXPECT_EQ(h.counters_dropped, h.dropped_counters.size());
  EXPECT_LE(h.counters_dropped, result.counter_names.size());
  if (!result.counter_names.empty()) {
    // Counters were attached for the whole run: every sample is a tick.
    EXPECT_EQ(h.ticks_attempted, result.samples.size());
  } else {
    EXPECT_EQ(h.ticks_attempted, 0u);
  }
  if (h.sampling_abandoned) {
    EXPECT_GE(h.ticks_failed, 3u);
  }
  for (const telemetry::Sample& sample : result.samples) {
    // Telemetry survives no matter what the counter path does.
    EXPECT_FALSE(sample.core_freq_mhz.empty());
    if (!sample.counters.empty()) {
      EXPECT_EQ(sample.counters.size(), result.counter_names.size());
    }
  }
}

TEST(Chaos, MonitorSoakSurvivesEveryProfileAndSeed) {
  for (const std::string& profile : FaultProfile::profile_names()) {
    for (const std::uint64_t seed : {17ull, 23ull, 41ull}) {
      SCOPED_TRACE(profile + "/" + std::to_string(seed));
      const telemetry::RunResult result = run_chaos_monitor(profile, seed);
      EXPECT_GT(result.gflops, 0.0) << "the run itself must never abort";
      EXPECT_GT(result.samples.size(), 1u);
      check_health_consistency(result);
    }
  }
}

TEST(Chaos, MonitorRunsAreDeterministicPerSeed) {
  const telemetry::RunResult a = run_chaos_monitor("mixed", 1234);
  const telemetry::RunResult b = run_chaos_monitor("mixed", 1234);
  EXPECT_EQ(a.health.ticks_attempted, b.health.ticks_attempted);
  EXPECT_EQ(a.health.ticks_failed, b.health.ticks_failed);
  EXPECT_EQ(a.health.ticks_degraded, b.health.ticks_degraded);
  EXPECT_EQ(a.health.counters_dropped, b.health.counters_dropped);
  EXPECT_EQ(a.health.faults_injected, b.health.faults_injected);
  EXPECT_EQ(a.health.sampling_abandoned, b.health.sampling_abandoned);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    ASSERT_EQ(a.samples[i].counters.size(), b.samples[i].counters.size());
    for (std::size_t c = 0; c < a.samples[i].counters.size(); ++c) {
      const double va = a.samples[i].counters[c];
      const double vb = b.samples[i].counters[c];
      if (std::isnan(va) || std::isnan(vb)) {
        EXPECT_TRUE(std::isnan(va) && std::isnan(vb));
      } else {
        EXPECT_EQ(va, vb);
      }
    }
  }
}

TEST(Chaos, CleanProfileMatchesUninjectedMonitorRun) {
  const telemetry::RunResult clean = run_chaos_monitor("none", 0);
  EXPECT_EQ(clean.health.faults_injected, 0u);
  EXPECT_EQ(clean.health.ticks_failed, 0u);
  EXPECT_EQ(clean.health.ticks_degraded, 0u);
  EXPECT_EQ(clean.health.counters_dropped, 0u);
  EXPECT_FALSE(clean.health.sampling_abandoned);
  for (const telemetry::Sample& sample : clean.samples) {
    EXPECT_TRUE(sample.counters_ok);
    for (const double v : sample.counters) EXPECT_FALSE(std::isnan(v));
  }
}

}  // namespace
}  // namespace hetpapi
