// FixedVector (the static-array bookkeeping container), Rng determinism,
// unit types, and the Status/Expected plumbing.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "base/fixed_vector.hpp"
#include "base/rng.hpp"
#include "base/status.hpp"
#include "base/units.hpp"

namespace hetpapi {
namespace {

TEST(FixedVector, PushPopAndIteration) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  v.emplace_back(3);
  EXPECT_EQ(v.size(), 3u);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 6);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
}

TEST(FixedVector, TryPushBackReportsFull) {
  FixedVector<int, 2> v;
  EXPECT_TRUE(v.try_push_back(1).is_ok());
  EXPECT_TRUE(v.try_push_back(2).is_ok());
  EXPECT_TRUE(v.full());
  const Status overflow = v.try_push_back(3);
  EXPECT_EQ(overflow.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.size(), 2u);
}

TEST(FixedVector, EraseAtPreservesOrder) {
  FixedVector<int, 8> v{10, 20, 30, 40};
  v.erase_at(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
}

TEST(FixedVector, NonTrivialElementsDestructed) {
  struct Probe {
    std::shared_ptr<int> counter;
    ~Probe() {
      if (counter) ++(*counter);
    }
  };
  auto destroyed = std::make_shared<int>(0);
  {
    FixedVector<Probe, 4> v;
    v.push_back(Probe{destroyed});
    v.push_back(Probe{destroyed});
    v.clear();
  }
  EXPECT_GE(*destroyed, 2);
}

TEST(FixedVector, CopyAndMoveSemantics) {
  FixedVector<std::string, 4> a;
  a.push_back("x");
  a.push_back("y");
  FixedVector<std::string, 4> b = a;
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], "y");
  FixedVector<std::string, 4> c = std::move(a);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], "x");
  b = c;
  EXPECT_EQ(b[0], "x");
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng a2(42);
  Rng c(43);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a2.next() != c.next()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformStaysInRangeAndCoversIt) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian(2.0);
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / kN, 4.0, 0.3);
}

TEST(Units, FrequencyConversions) {
  const MegaHertz f = MegaHertz::from_ghz(2.5);
  EXPECT_DOUBLE_EQ(f.value, 2500.0);
  EXPECT_EQ(f.kilohertz(), 2500000);
  EXPECT_DOUBLE_EQ(MegaHertz::from_khz(1500000).value, 1500.0);
}

TEST(Units, EnergyPowerTimeAlgebra) {
  const Watts p{65.0};
  const Joules e = p * std::chrono::seconds(10);
  EXPECT_DOUBLE_EQ(e.value, 650.0);
  EXPECT_DOUBLE_EQ(e.over(std::chrono::seconds(10)).value, 65.0);
}

TEST(Units, SimTimeArithmetic) {
  SimTime t = SimTime::from_seconds(1.5);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  t += std::chrono::milliseconds(500);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
  EXPECT_EQ(t - SimTime::from_seconds(1.0), std::chrono::seconds(1));
}

TEST(Status, OkAndErrorBasics) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status err = make_error(StatusCode::kConflict, "boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), StatusCode::kConflict);
  EXPECT_EQ(err.to_string(), "CONFLICT: boom");
}

TEST(Expected, ValueAndErrorPaths) {
  Expected<int> good = 5;
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(*good, 5);
  EXPECT_TRUE(good.status().is_ok());

  Expected<int> bad = make_error(StatusCode::kNotFound, "nope");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(bad.value_or(9), 9);
}

}  // namespace
}  // namespace hetpapi
