// HPL performance model: work accounting, completion, and the Table
// II / Figure 4 orderings at reduced problem sizes.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "workload/exec_model.hpp"
#include "workload/hpl.hpp"

namespace hetpapi::workload {
namespace {

using simkernel::CpuSet;
using simkernel::SimKernel;

SimKernel::Config fast_kernel() {
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  return config;
}

/// Run HPL on the given cpus of a machine; returns (gflops, seconds).
std::pair<double, double> run_hpl(const cpumodel::MachineSpec& machine,
                                  const HplConfig& config,
                                  const std::vector<int>& cpus) {
  SimKernel kernel(machine, fast_kernel());
  HplSimulation hpl(config, static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                 CpuSet::of({cpus[i]}));
  }
  const SimDuration elapsed =
      kernel.run_until_idle(std::chrono::seconds(3600));
  EXPECT_TRUE(hpl.complete()) << "run must finish";
  return {hpl.gflops(elapsed).value,
          std::chrono::duration<double>(elapsed).count()};
}

TEST(HplModel, FlopFormulaMatchesStandardCount) {
  HplSimulation hpl(HplConfig::openblas(1000, 100), 4);
  const double n = 1000.0;
  EXPECT_NEAR(static_cast<double>(hpl.total_flops()),
              2.0 / 3.0 * n * n * n + 2.0 * n * n, 1.0);
}

TEST(HplModel, CompletesOnSingleCore) {
  const auto machine = cpumodel::homogeneous_xeon(1);
  const auto [gflops, seconds] =
      run_hpl(machine, HplConfig::openblas(2304, 192), {0});
  EXPECT_GT(gflops, 1.0);
  EXPECT_GT(seconds, 0.01);
}

TEST(HplModel, StaticVariantSpinsDynamicDoesNot) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const std::vector<int> e_cpus = machine.cpus_of_type(1);
  cpus.insert(cpus.end(), e_cpus.begin(), e_cpus.end());

  SimKernel kernel_static(machine, fast_kernel());
  HplSimulation hpl_static(HplConfig::openblas(13824, 192),
                           static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel_static.spawn(hpl_static.make_worker(static_cast<int>(i)),
                        CpuSet::of({cpus[i]}));
  }
  kernel_static.run_until_idle(std::chrono::seconds(600));

  SimKernel kernel_dynamic(machine, fast_kernel());
  HplSimulation hpl_dynamic(HplConfig::intel(13824, 192),
                            static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel_dynamic.spawn(hpl_dynamic.make_worker(static_cast<int>(i)),
                         CpuSet::of({cpus[i]}));
  }
  kernel_dynamic.run_until_idle(std::chrono::seconds(600));

  EXPECT_GT(hpl_static.spin_instructions(),
            hpl_static.work_instructions() / 10)
      << "barrier stragglers force significant spinning";
  EXPECT_LT(hpl_dynamic.spin_instructions(),
            hpl_static.spin_instructions())
      << "work stealing spins less than static partitioning";
}

TEST(HplModel, TableTwoOrderingsHoldAtReducedSize) {
  // The run must be long enough that the PL2 burst is amortized and the
  // 65 W steady state dominates — N=43008 keeps the test ~4 s wall.
  const int n = 43008;
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const std::vector<int> p_cpus = machine.primary_threads_of_type(0);
  const std::vector<int> e_cpus = machine.cpus_of_type(1);
  std::vector<int> all_cpus = p_cpus;
  all_cpus.insert(all_cpus.end(), e_cpus.begin(), e_cpus.end());

  const auto [ob_p, t1] = run_hpl(machine, HplConfig::openblas(n), p_cpus);
  const auto [ob_all, t2] = run_hpl(machine, HplConfig::openblas(n), all_cpus);
  const auto [in_p, t3] = run_hpl(machine, HplConfig::intel(n), p_cpus);
  const auto [in_all, t4] = run_hpl(machine, HplConfig::intel(n), all_cpus);

  // The four orderings that constitute the paper's Table II story.
  EXPECT_GT(in_p, ob_p) << "vendor build wins on P cores";
  EXPECT_GT(in_all, ob_all) << "vendor build wins on all cores";
  EXPECT_LT(ob_all, ob_p)
      << "hybrid-unaware build is hurt by adding E cores";
  EXPECT_GT(in_all, in_p)
      << "hybrid-aware build benefits from adding E cores";
  // And the headline: the all-core gap is the largest one.
  EXPECT_GT((in_all - ob_all) / ob_all, 0.3);
}

TEST(HplModel, OrangePiFigureFourOrdering) {
  const auto machine = cpumodel::orangepi800_rk3399();
  const int n = 10240;
  const auto [g_big, t_big] =
      run_hpl(machine, HplConfig::openblas(n, 128), {4, 5});
  const auto [g_little, t_little] =
      run_hpl(machine, HplConfig::openblas(n, 128), {0, 1, 2, 3});
  const auto [g_all, t_all] =
      run_hpl(machine, HplConfig::openblas(n, 128), {0, 1, 2, 3, 4, 5});
  EXPECT_LT(t_little, t_big)
      << "thermal throttling makes 4 LITTLE faster than 2 big";
  EXPECT_LT(t_all, t_little) << "all six still improve slightly";
  EXPECT_LT((t_little - t_all) / t_little, 0.35)
      << "but the improvement over 4 LITTLE is modest";
  EXPECT_GT(g_all, g_little);
}

TEST(HplModel, MonitoredRunProducesTelemetryAndCounters) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel kernel(machine, fast_kernel());
  telemetry::MonitorConfig monitor;
  monitor.sample_period_s = 1.0;
  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const auto result = telemetry::run_monitored_hpl(
      kernel, HplConfig::openblas(13824, 192), cpus, monitor);
  EXPECT_GT(result.gflops, 50.0);
  EXPECT_GT(result.samples.size(), 3u);
  ASSERT_EQ(result.counts_per_type.size(), 2u);
  EXPECT_GT(result.counts_per_type[0].instructions, 0u);
  EXPECT_EQ(result.counts_per_type[1].instructions, 0u)
      << "P-only run touches no E cores";
}

TEST(ExecModel, MemoryWallGrowsWithFrequency) {
  const auto core = cpumodel::raptor_lake_i7_13700().core_types[0];
  const PhaseSpec phase = phases::memory_bound();
  const double cpi_slow =
      cycles_per_instruction(core, phase, MegaHertz{1000}, 1.0);
  const double cpi_fast =
      cycles_per_instruction(core, phase, MegaHertz{5000}, 1.0);
  EXPECT_GT(cpi_fast, cpi_slow)
      << "miss latency in ns costs more cycles at higher frequency";
  // Contention inflates stalls further.
  const double cpi_contended =
      cycles_per_instruction(core, phase, MegaHertz{5000}, 2.0);
  EXPECT_GT(cpi_contended, cpi_fast);
}

TEST(ExecModel, FlopsLimitedKernelsSaturateTheSimdUnits) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const PhaseSpec dgemm = phases::dgemm(1.0, 0.0, 0.0);
  // At zero cache traffic, flops/cycle approaches the core's peak.
  for (const auto& core : machine.core_types) {
    const double cpi =
        cycles_per_instruction(core, dgemm, core.dvfs.freq_base, 1.0);
    const double flops_per_cycle = dgemm.flops_per_instr / cpi;
    EXPECT_NEAR(flops_per_cycle, core.perf.flops_per_cycle_dp,
                0.05 * core.perf.flops_per_cycle_dp)
        << core.name;
  }
}

TEST(ExecModel, CountsScaleLinearlyWithInstructions) {
  const auto core = cpumodel::raptor_lake_i7_13700().core_types[1];
  PhaseSpec phase;
  phase.llc_refs_per_kinstr = 10.0;
  phase.llc_miss_ratio = 0.5;
  phase.branches_per_kinstr = 100.0;
  const double cpi =
      cycles_per_instruction(core, phase, MegaHertz{3000}, 1.0);
  const auto counts =
      make_counts(core, phase, 1'000'000, cpi, MegaHertz{3000});
  EXPECT_EQ(counts.instructions, 1'000'000u);
  EXPECT_EQ(counts.llc_references, 10'000u);
  EXPECT_EQ(counts.llc_misses, 5'000u);
  EXPECT_EQ(counts.branches, 100'000u);
  EXPECT_NEAR(static_cast<double>(counts.cycles), 1e6 * cpi, 1.0);
}

}  // namespace
}  // namespace hetpapi::workload
