// Determinism properties: identical seeds reproduce identical runs
// bit-for-bit (the property EXPERIMENTS.md's numbers rely on), and the
// hybrid-multiplexing interplay of §IV-E stays accurate on a migrating
// thread with both PMUs oversubscribed.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/multi_run.hpp"
#include "workload/hpl.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

double hpl_gflops(std::uint64_t seed, int n = 13824) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  config.seed = seed;
  SimKernel kernel(machine, config);
  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const auto e = machine.cpus_of_type(1);
  cpus.insert(cpus.end(), e.begin(), e.end());
  workload::HplSimulation hpl(workload::HplConfig::openblas(n, 192),
                              static_cast<int>(cpus.size()));
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    kernel.spawn(hpl.make_worker(static_cast<int>(i)),
                 CpuSet::of({cpus[i]}));
  }
  const SimDuration elapsed =
      kernel.run_until_idle(std::chrono::seconds(600));
  return hpl.gflops(elapsed).value;
}

TEST(Determinism, SameSeedReproducesHplExactly) {
  const double first = hpl_gflops(42);
  const double second = hpl_gflops(42);
  EXPECT_EQ(first, second) << "bit-for-bit reproducibility";
}

TEST(Determinism, DifferentSeedsVaryOnlySlightly) {
  const double a = hpl_gflops(42);
  const double b = hpl_gflops(1337);
  EXPECT_NE(a, b) << "seeds perturb governor jitter and placement";
  EXPECT_NEAR(a, b, 0.05 * a) << "but the physics dominates";
}

TEST(Determinism, MigratingMeasurementIsSeedStable) {
  const auto run_once = [] {
    SimKernel::Config config;
    config.sched.migration_rate_hz = 50.0;
    SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
    SimBackend backend(&kernel);
    PhaseSpec phase;
    const Tid tid = kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 500'000'000),
        CpuSet::all(24));
    backend.set_default_target(tid);
    auto lib = Library::init(&backend);
    auto set = (*lib)->create_eventset();
    (void)(*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY");
    (void)(*lib)->add_event(*set, "adl_grt::INST_RETIRED:ANY");
    (void)(*lib)->start(*set);
    kernel.run_until_idle(std::chrono::seconds(60));
    return *(*lib)->stop(*set);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second) << "identical seeds => identical P/E split";
}

TEST(Determinism, MultiRunExecutorIsWorkerCountInvariant) {
  // The parallel-executor guarantee: fanning independent seeded runs
  // across a worker pool changes wall-clock only. Results must be
  // bit-identical to the serial (inline, single-worker) execution for
  // any worker count.
  const std::uint64_t seeds[] = {1, 42, 1337, 0xfeed};
  constexpr std::size_t kCells = std::size(seeds);
  const auto run_all = [&](std::size_t threads) {
    std::vector<double> gflops(kCells, 0.0);
    std::vector<telemetry::RunCell> cells;
    for (std::size_t i = 0; i < kCells; ++i) {
      cells.push_back({"seed " + std::to_string(seeds[i]), [&, i] {
                         gflops[i] = hpl_gflops(seeds[i], 6912);
                       }});
    }
    telemetry::MultiRunExecutor executor(threads);
    const auto timings = executor.execute(cells);
    EXPECT_EQ(timings.size(), kCells);
    return gflops;
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(serial[i], parallel[i])
        << "seed " << seeds[i] << ": parallel execution must be bit-exact";
  }
}

TEST(Determinism, QualifiedBreakdownIsWorkerCountInvariant) {
  // §V-2 reporting under the parallel executor: the per-core-type
  // breakdown of a derived preset (not just its folded total) must be
  // bit-identical whether the seeded runs execute serially or fanned
  // across 4 workers.
  const std::uint64_t seeds[] = {7, 42, 0xbeef};
  constexpr std::size_t kCells = std::size(seeds);
  const auto measure_once = [](std::uint64_t seed) {
    SimKernel::Config config;
    config.sched.migration_rate_hz = 40.0;
    config.seed = seed;
    SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
    SimBackend backend(&kernel);
    const Tid tid = kernel.spawn(
        std::make_shared<FixedWorkProgram>(PhaseSpec{}, 300'000'000),
        CpuSet::all(24));
    backend.set_default_target(tid);
    auto lib = Library::init(&backend);
    auto set = (*lib)->create_eventset();
    (void)(*lib)->add_event(*set, "PAPI_TOT_INS");
    (void)(*lib)->start(*set);
    kernel.run_until_idle(std::chrono::seconds(60));
    auto readings = (*lib)->read_qualified(*set);
    EXPECT_TRUE(readings.has_value());
    (void)(*lib)->stop(*set);
    // Flatten the breakdown: total then every per-PMU part, in order.
    std::vector<long long> flat;
    for (const papi::QualifiedReading& reading : *readings) {
      flat.push_back(reading.total);
      for (const papi::QualifiedValue& part : reading.parts) {
        flat.push_back(part.sign * part.value);
      }
    }
    return flat;
  };
  const auto run_all = [&](std::size_t threads) {
    std::vector<std::vector<long long>> results(kCells);
    std::vector<telemetry::RunCell> cells;
    for (std::size_t i = 0; i < kCells; ++i) {
      cells.push_back({"seed " + std::to_string(seeds[i]), [&, i] {
                         results[i] = measure_once(seeds[i]);
                       }});
    }
    telemetry::MultiRunExecutor executor(threads);
    (void)executor.execute(cells);
    return results;
  };
  const auto serial = run_all(1);
  const auto parallel = run_all(4);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i])
        << "seed " << seeds[i]
        << ": per-core-type breakdown must be bit-exact for any worker count";
  }
}

TEST(HybridMultiplex, BothPmuContextsRotateIndependently) {
  // The §IV-E caveat, worst case: a single EventSet with oversubscribed
  // GP events on BOTH core PMUs, measured on a thread that migrates
  // between the core types. Each PMU context multiplexes on its own;
  // scaled estimates must still track ground truth.
  SimKernel::Config config;
  config.sched.migration_rate_hz = 30.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  PhaseSpec phase;
  phase.llc_refs_per_kinstr = 10.0;
  phase.llc_miss_ratio = 0.4;
  phase.branches_per_kinstr = 100.0;
  phase.branch_miss_ratio = 0.03;
  phase.flops_per_instr = 0.8;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 30'000'000'000ULL),
      CpuSet::all(24));
  backend.set_default_target(tid);
  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, lib_config);
  auto set = (*lib)->create_eventset();

  const char* stems[] = {
      "LONGEST_LAT_CACHE:REFERENCE", "LONGEST_LAT_CACHE:MISS",
      "BR_INST_RETIRED:ALL_BRANCHES", "BR_MISP_RETIRED:ALL_BRANCHES",
      "RESOURCE_STALLS",
  };
  const simkernel::CountKind kinds[] = {
      simkernel::CountKind::kLlcReferences,
      simkernel::CountKind::kLlcMisses,
      simkernel::CountKind::kBranches,
      simkernel::CountKind::kBranchMisses,
      simkernel::CountKind::kStalledCycles,
  };
  // 10 GP events per PMU vs 8 (P) / 6 (E) counters: both oversubscribed.
  for (const char* pmu : {"adl_glc", "adl_grt"}) {
    for (int copy = 0; copy < 2; ++copy) {
      for (const char* stem : stems) {
        ASSERT_TRUE(
            lib.value()
                ->add_event(*set, std::string(pmu) + "::" + stem)
                .is_ok())
            << pmu << "::" << stem;
      }
    }
  }
  ASSERT_TRUE((*lib)->set_multiplex(*set).is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(60));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());

  const auto* truth = kernel.ground_truth(tid);
  for (std::size_t i = 0; i < 20; ++i) {
    const std::size_t type = i < 10 ? 0 : 1;  // first half P, second E
    const auto kind = kinds[i % 5];
    const double expected =
        static_cast<double>(truth->per_type[type].get(kind));
    const double got = static_cast<double>((*values)[i]);
    EXPECT_NEAR(got, expected, 0.12 * expected + 2000.0)
        << "slot " << i << " (" << (type == 0 ? "P" : "E") << ")";
  }
}

}  // namespace
}  // namespace hetpapi
