// The paper's §IV-F validation: papi_hybrid_100m_one_eventset.
//
// "We have a test that runs 1 million instructions 100 times and
//  measures the average retired events. The result should be roughly
//  1 million. [...] On a heterogeneous machine with original PAPI you
//  could specify only one of the events, so you might get 0, 1 million,
//  or something in between depending how the OS scheduled the process.
//  [...] With the new, patched, PAPI the test runs as expected:
//    Average instructions p: 836848 e: 167487"
#include <gtest/gtest.h>

#include <numeric>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::PhaseSpec;
using workload::WorkQueueProgram;

constexpr std::uint64_t kMillion = 1'000'000;
constexpr int kIterations = 100;

struct HybridAverages {
  double p = 0.0;
  double e = 0.0;
};

/// Run the 1M x100 caliper loop measuring with explicit P and E events in
/// one EventSet; returns the average per-iteration counts.
HybridAverages run_hybrid_loop(SimKernel& kernel, Library& lib,
                               const CpuSet& affinity) {
  auto program = std::make_shared<WorkQueueProgram>();
  const Tid tid = kernel.spawn(program, affinity);

  auto set = lib.create_eventset();
  EXPECT_TRUE(set.has_value());
  EXPECT_TRUE(lib.attach(*set, tid).is_ok());
  EXPECT_TRUE(lib.add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  EXPECT_TRUE(lib.add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());

  std::uint64_t p_total = 0;
  std::uint64_t e_total = 0;
  PhaseSpec phase;  // plain integer loop
  for (int i = 0; i < kIterations; ++i) {
    EXPECT_TRUE(lib.start(*set).is_ok());
    program->enqueue(phase, kMillion);
    while (!program->idle()) kernel.run_for(std::chrono::milliseconds(1));
    auto values = lib.stop(*set);
    EXPECT_TRUE(values.has_value());
    p_total += static_cast<std::uint64_t>((*values)[0]);
    e_total += static_cast<std::uint64_t>((*values)[1]);
  }
  program->finish();
  kernel.run_until_idle(std::chrono::seconds(5));

  return HybridAverages{static_cast<double>(p_total) / kIterations,
                        static_cast<double>(e_total) / kIterations};
}

TEST(HybridValidation, UnpinnedRunSplitsAcrossCoreTypesAndSumsToOneMillion) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 40.0;  // OS noise moves the thread
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());

  const HybridAverages avg = run_hybrid_loop(
      kernel, **lib, CpuSet::all(kernel.machine().num_cpus()));

  const double sum = avg.p + avg.e;
  // "if you add them up they average near 1 million" — plus the small
  // PAPI caliper overhead.
  EXPECT_GE(sum, 1'000'000.0);
  EXPECT_LE(sum, 1'030'000.0) << "overhead should stay minor";
  EXPECT_GT(avg.p, 0.0) << "some instructions on the P cores";
  EXPECT_GT(avg.e, 0.0) << "some instructions on the E cores";
  EXPECT_GT(avg.p, avg.e)
      << "placement biases toward the higher-capacity P cores";
}

TEST(HybridValidation, TasksetPinnedToPCoreCountsOnlyOnP) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());

  // taskset -c 0 (a P-core thread).
  const HybridAverages avg = run_hybrid_loop(kernel, **lib, CpuSet::of({0}));
  EXPECT_GE(avg.p, 1'000'000.0);
  EXPECT_EQ(avg.e, 0.0);
}

TEST(HybridValidation, TasksetPinnedToECoreCountsOnlyOnE) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());

  // taskset -c 16 (an E-core).
  const HybridAverages avg = run_hybrid_loop(kernel, **lib, CpuSet::of({16}));
  EXPECT_EQ(avg.p, 0.0);
  EXPECT_GE(avg.e, 1'000'000.0);
}

TEST(HybridValidation, LegacySingleEventUndercountsOnUnpinnedRun) {
  // Original PAPI: only one of the two events can be in the EventSet, so
  // the measured value is "0, 1 million, or something in between".
  SimKernel::Config config;
  config.sched.migration_rate_hz = 40.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  LibraryConfig lib_config;
  lib_config.hybrid_support = false;
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value());

  auto program = std::make_shared<WorkQueueProgram>();
  const Tid tid =
      kernel.spawn(program, CpuSet::all(kernel.machine().num_cpus()));
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());

  PhaseSpec phase;
  std::uint64_t total = 0;
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE((*lib)->start(*set).is_ok());
    program->enqueue(phase, kMillion);
    while (!program->idle()) kernel.run_for(std::chrono::milliseconds(1));
    auto values = (*lib)->stop(*set);
    ASSERT_TRUE(values.has_value());
    total += static_cast<std::uint64_t>((*values)[0]);
  }
  program->finish();
  const double average = static_cast<double>(total) / kIterations;
  EXPECT_LT(average, 1'000'000.0)
      << "P-only measurement must miss the E-core share";
  EXPECT_GT(average, 0.0);
}

TEST(HybridValidation, PaperResidencySplitIsRoughlyFiveToOne) {
  // The paper's measured run gives p:e ~ 836848:167487 (about 83:17).
  // Our scheduler's capacity-biased placement should land in the same
  // neighbourhood — this guards the calibration.
  SimKernel::Config config;
  config.sched.migration_rate_hz = 40.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());

  const HybridAverages avg = run_hybrid_loop(
      kernel, **lib, CpuSet::all(kernel.machine().num_cpus()));
  const double e_share = avg.e / (avg.p + avg.e);
  EXPECT_GT(e_share, 0.05);
  EXPECT_LT(e_share, 0.35) << "E residency should be the minority share";
}

}  // namespace
}  // namespace hetpapi
