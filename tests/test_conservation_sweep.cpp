// The fundamental hybrid-counting invariant, swept across every machine
// model in the catalog: for an unpinned migrating thread, one
// instructions event per core PMU must sum exactly to the instructions
// the simulator actually retired — on 1-, 2- and 3-core-type machines,
// servers included. This is the §IV-F "adds up to 1 million" property
// as a universal law.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

class ConservationSweep
    : public ::testing::TestWithParam<cpumodel::MachineSpec> {};

TEST_P(ConservationSweep, PerPmuEventsSumToGroundTruth) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 120.0;
  SimKernel kernel(GetParam(), config);

  PhaseSpec phase;
  phase.llc_refs_per_kinstr = 5.0;
  phase.llc_miss_ratio = 0.3;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::all(kernel.machine().num_cpus()));

  // One instructions event per core PMU, exactly as the patched PAPI
  // EventSet opens them.
  std::vector<int> fds;
  for (const auto* pmu : kernel.pmus().core_pmus()) {
    PerfEventAttr attr;
    attr.type = pmu->type_id;
    attr.config = static_cast<std::uint64_t>(CountKind::kInstructions);
    auto fd = kernel.perf_event_open(attr, tid, -1, -1);
    ASSERT_TRUE(fd.has_value()) << pmu->sysfs_name;
    fds.push_back(*fd);
  }
  ASSERT_EQ(fds.size(), GetParam().core_types.size());

  kernel.run_until_idle(std::chrono::seconds(120));
  ASSERT_FALSE(kernel.thread_alive(tid));

  std::uint64_t sum = 0;
  int pmus_with_counts = 0;
  for (const int fd : fds) {
    const auto value = kernel.perf_read(fd);
    ASSERT_TRUE(value.has_value());
    sum += value->value;
    if (value->value > 0) ++pmus_with_counts;
  }
  EXPECT_EQ(sum, 1'000'000'000u) << "conservation across all core PMUs";
  if (GetParam().is_hybrid()) {
    EXPECT_GT(pmus_with_counts, 1)
        << "a migrating thread must visit more than one core type";
  }
  // Per-PMU values match the per-type ground truth exactly.
  const auto* truth = kernel.ground_truth(tid);
  for (std::size_t i = 0; i < fds.size(); ++i) {
    EXPECT_EQ(kernel.perf_read(fds[i])->value,
              truth->per_type[i].instructions)
        << GetParam().core_types[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, ConservationSweep,
    ::testing::Values(cpumodel::raptor_lake_i7_13700(),
                      cpumodel::alder_lake_i9_12900k(),
                      cpumodel::orangepi800_rk3399(),
                      cpumodel::arm_three_type(),
                      cpumodel::homogeneous_xeon(),
                      cpumodel::sierra_forest_e_only(),
                      cpumodel::granite_rapids_p_only()),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace hetpapi
