// Real-kernel backend smoke tests, runtime-gated on perf_event_open
// availability (only software events are assumed; this VM has no
// hardware PMU, which is itself asserted where meaningful).
#include <gtest/gtest.h>

#include <chrono>

#include "linuxkernel/linux_backend.hpp"
#include "papi/library.hpp"

namespace hetpapi {
namespace {

using linuxkernel::LinuxBackend;
using linuxkernel::LinuxHost;
using linuxkernel::perf_event_available;
using simkernel::CountKind;
using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;

#define SKIP_WITHOUT_PERF()                                         \
  if (!perf_event_available()) {                                    \
    GTEST_SKIP() << "perf_event_open unavailable in this sandbox";  \
  }

volatile std::uint64_t g_sink = 0;

void burn_cpu_ms(int ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  std::uint64_t x = 1;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 10000; ++i) x = x * 6364136223846793005ULL + 1;
    g_sink = x;
  }
}

TEST(LinuxHost, ReadsRealProcAndSys) {
  LinuxHost host;
  EXPECT_GE(host.num_cpus(), 1);
  const auto cpuinfo = host.read_file("/proc/cpuinfo");
  ASSERT_TRUE(cpuinfo.has_value());
  EXPECT_FALSE(cpuinfo->empty());
  const auto devices = host.list_dir("/sys/devices");
  ASSERT_TRUE(devices.has_value());
  EXPECT_FALSE(devices->empty());
  EXPECT_EQ(host.read_file("/definitely/not/a/path").status().code(),
            StatusCode::kNotFound);
}

TEST(LinuxHost, CpuidBehavesByArchitecture) {
  LinuxHost host;
  const auto kind = host.cpuid_core_kind(0);
#if defined(__x86_64__) || defined(__i386__)
  ASSERT_TRUE(kind.has_value());
  // Whatever the part, the value is one of the defined encodings.
  EXPECT_TRUE(*kind == cpumodel::IntelCoreKind::kNone ||
              *kind == cpumodel::IntelCoreKind::kAtom ||
              *kind == cpumodel::IntelCoreKind::kCore);
#else
  EXPECT_FALSE(kind.has_value());
#endif
}

TEST(LinuxBackend, TaskClockCountsWhileBurningCpu) {
  SKIP_WITHOUT_PERF();
  LinuxBackend backend;
  PerfEventAttr attr;
  attr.type = simkernel::kPerfTypeSoftware;
  attr.config = static_cast<std::uint64_t>(CountKind::kTaskClockNs);
  attr.disabled = true;
  auto fd = backend.perf_event_open(attr, 0, -1, -1, 0);
  ASSERT_TRUE(fd.has_value()) << fd.status().to_string();
  ASSERT_TRUE(backend.perf_ioctl(*fd, PerfIoctl::kEnable, 0).is_ok());
  // Burn wall time in slices until the *task clock* crosses the
  // threshold: under a parallel ctest on a small host this process can
  // be starved far below its wall-time share, so a fixed 30 ms burn is
  // not enough — keep going (bounded by a generous wall deadline) until
  // the kernel has actually charged us the cpu time we assert on.
  constexpr std::uint64_t kWantTaskClockNs = 10'000'000;  // 10 ms
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::uint64_t counted = 0;
  while (std::chrono::steady_clock::now() < wall_deadline) {
    burn_cpu_ms(10);
    auto progress = backend.perf_read(*fd);
    ASSERT_TRUE(progress.has_value());
    counted = progress->value;
    if (counted > kWantTaskClockNs) break;
  }
  ASSERT_TRUE(backend.perf_ioctl(*fd, PerfIoctl::kDisable, 0).is_ok());
  auto value = backend.perf_read(*fd);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(backend.perf_close(*fd).is_ok());
  if (value->value <= kWantTaskClockNs) {
    // Even the 20 s deadline was not enough cpu share: on a loaded
    // single-core host (ctest -j alongside sanitizer legs) the
    // scheduler can legitimately starve us below 10 ms of task clock.
    // That tells us nothing about the backend — skip, don't flake.
    GTEST_SKIP() << "scheduler-starved: only " << value->value
                 << " ns of task clock accrued before the wall deadline";
  }
  EXPECT_GT(value->value, kWantTaskClockNs);
}

TEST(LinuxBackend, GroupReadReturnsAllMembers) {
  SKIP_WITHOUT_PERF();
  LinuxBackend backend;
  PerfEventAttr attr;
  attr.type = simkernel::kPerfTypeSoftware;
  attr.config = static_cast<std::uint64_t>(CountKind::kTaskClockNs);
  attr.read_format = simkernel::kFormatGroup |
                     simkernel::kFormatTotalTimeEnabled |
                     simkernel::kFormatTotalTimeRunning;
  attr.disabled = true;
  auto leader = backend.perf_event_open(attr, 0, -1, -1, 0);
  ASSERT_TRUE(leader.has_value());
  attr.config = static_cast<std::uint64_t>(CountKind::kContextSwitches);
  attr.disabled = false;
  auto sibling = backend.perf_event_open(attr, 0, -1, *leader, 0);
  ASSERT_TRUE(sibling.has_value());

  ASSERT_TRUE(backend
                  .perf_ioctl(*leader, PerfIoctl::kEnable,
                              simkernel::kIocFlagGroup)
                  .is_ok());
  burn_cpu_ms(20);
  auto values = backend.perf_read_group(*leader);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();
  ASSERT_EQ(values->size(), 2u);
  EXPECT_GT((*values)[0].value, 0u);
  (void)backend.perf_close(*sibling);
  (void)backend.perf_close(*leader);
}

TEST(LinuxBackend, ResetZeroesTheCount) {
  SKIP_WITHOUT_PERF();
  LinuxBackend backend;
  PerfEventAttr attr;
  attr.type = simkernel::kPerfTypeSoftware;
  attr.config = static_cast<std::uint64_t>(CountKind::kTaskClockNs);
  attr.disabled = false;
  auto fd = backend.perf_event_open(attr, 0, -1, -1, 0);
  ASSERT_TRUE(fd.has_value());
  burn_cpu_ms(10);
  ASSERT_GT(backend.perf_read(*fd)->value, 0u);
  ASSERT_TRUE(backend.perf_ioctl(*fd, PerfIoctl::kReset, 0).is_ok());
  // Immediately after reset the count restarts near zero (well under
  // what was accumulated).
  EXPECT_LT(backend.perf_read(*fd)->value, 5'000'000u);
  (void)backend.perf_close(*fd);
}

TEST(LinuxBackend, RdpmcIsNotSupported) {
  LinuxBackend backend;
  EXPECT_EQ(backend.perf_rdpmc(3).status().code(),
            StatusCode::kNotSupported);
}

TEST(LinuxBackend, UnknownKindMappingsAreRejected) {
  SKIP_WITHOUT_PERF();
  LinuxBackend backend;
  PerfEventAttr attr;
  attr.type = simkernel::kPerfTypeSoftware;
  attr.config = static_cast<std::uint64_t>(CountKind::kEnergyPkgUj);
  auto fd = backend.perf_event_open(attr, 0, -1, -1, 0);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kNotSupported);
}

TEST(LinuxBackend, SysinfoComponentReadsTheRealProcfs) {
  LinuxBackend backend;
  auto lib = papi::Library::init(&backend);
  if (!lib.has_value()) {
    GTEST_SKIP() << "library init unavailable on this host: "
                 << lib.status().to_string();
  }

  // The real-kernel backend refuses the sim-only components; sysinfo
  // reads live procfs and is always there.
  EXPECT_NE((*lib)->registry().find("sysinfo"), nullptr);
  EXPECT_EQ((*lib)->registry().find("rapl"), nullptr);
  EXPECT_EQ((*lib)->registry().find("perf_event_uncore"), nullptr);

  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE(
      (*lib)->add_event(*set, "sysinfo::SYS_CTX_SWITCHES").is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "sysinfo::SYS_CPU_TIME_MS").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  burn_cpu_ms(30);
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();
  ASSERT_EQ(values->size(), 2u);
  EXPECT_GE((*values)[0], 0) << "context switches since start";
  EXPECT_GT((*values)[1], 0) << "system-wide busy time while burning cpu";

  // The package thermal zone is host-dependent (absent on headless VMs);
  // either it opens and reads a plausible temperature, or add_event
  // fails cleanly with kNotSupported and rolls back.
  auto temp_set = (*lib)->create_eventset();
  ASSERT_TRUE(temp_set.has_value());
  const Status added = (*lib)->add_event(*temp_set, "sysinfo::PKG_TEMP_MC");
  if (added.is_ok()) {
    ASSERT_TRUE((*lib)->start(*temp_set).is_ok());
    auto temp = (*lib)->stop(*temp_set);
    ASSERT_TRUE(temp.has_value());
    EXPECT_GT((*temp)[0], 0);
  } else {
    EXPECT_EQ(added.code(), StatusCode::kNotSupported);
    auto info = (*lib)->eventset_info(*temp_set);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->empty()) << "failed add must roll back";
  }
}

}  // namespace
}  // namespace hetpapi
