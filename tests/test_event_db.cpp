// The event-table database itself: structural invariants across every
// table (names unique, kinds consistent, required umasks marked) plus
// spot checks of the per-flavour contents.
#include <gtest/gtest.h>

#include <set>

#include "pfm/event_db.hpp"

namespace hetpapi::pfm {
namespace {

using simkernel::CountKind;

TEST(EventDb, TableNamesAreUnique) {
  std::set<std::string> names;
  for (const PmuTable& table : all_tables()) {
    EXPECT_TRUE(names.insert(table.pfm_name).second)
        << "duplicate table " << table.pfm_name;
    EXPECT_FALSE(table.description.empty()) << table.pfm_name;
  }
  EXPECT_GE(names.size(), 11u);
}

TEST(EventDb, EventNamesUniqueWithinEachTable) {
  for (const PmuTable& table : all_tables()) {
    std::set<std::string> names;
    for (const EventDesc& event : table.events) {
      EXPECT_TRUE(names.insert(event.name).second)
          << table.pfm_name << "::" << event.name;
      EXPECT_FALSE(event.description.empty())
          << table.pfm_name << "::" << event.name;
      std::set<std::string> umasks;
      for (const UmaskDesc& umask : event.umasks) {
        EXPECT_TRUE(umasks.insert(umask.name).second)
            << table.pfm_name << "::" << event.name << ":" << umask.name;
      }
      if (event.requires_umask) {
        EXPECT_FALSE(event.umasks.empty())
            << event.name << " requires a umask but offers none";
      }
    }
  }
}

TEST(EventDb, EveryCoreTableCoversTheBaselineKinds) {
  // Presets depend on every core PMU providing these quantities under
  // some native name.
  const CountKind baseline[] = {
      CountKind::kInstructions, CountKind::kCycles,
      CountKind::kLlcReferences, CountKind::kLlcMisses,
      CountKind::kBranches,      CountKind::kBranchMisses,
  };
  for (const PmuTable& table : all_tables()) {
    if (!table.is_core) continue;
    for (const CountKind kind : baseline) {
      bool found = false;
      for (const EventDesc& event : table.events) {
        if (!event.requires_umask && event.default_kind == kind) found = true;
        for (const UmaskDesc& umask : event.umasks) {
          if (umask.kind == kind) found = true;
        }
      }
      EXPECT_TRUE(found) << table.pfm_name << " lacks kind "
                         << static_cast<int>(kind);
    }
  }
}

TEST(EventDb, MatchMetadataIsCoherent) {
  for (const PmuTable& table : all_tables()) {
    switch (table.match) {
      case MatchKind::kSysfsName:
        EXPECT_FALSE(table.sysfs_names.empty()) << table.pfm_name;
        break;
      case MatchKind::kArmMidr:
        EXPECT_FALSE(table.arm_parts.empty()) << table.pfm_name;
        EXPECT_TRUE(table.intel_models.empty()) << table.pfm_name;
        break;
      case MatchKind::kAlways:
        // Software tables bind unconditionally; they must not carry
        // device-matching metadata that would never be consulted.
        EXPECT_TRUE(table.sysfs_names.empty()) << table.pfm_name;
        EXPECT_TRUE(table.arm_parts.empty()) << table.pfm_name;
        EXPECT_TRUE(table.intel_models.empty()) << table.pfm_name;
        EXPECT_FALSE(table.is_core) << table.pfm_name;
        break;
    }
  }
}

TEST(EventDb, IntelModelKeyedTablesDoNotCollide) {
  // All tables matching sysfs "cpu" must be disambiguated by disjoint
  // model lists — otherwise the scan would be ambiguous.
  std::set<int> models;
  for (const PmuTable& table : all_tables()) {
    if (table.match != MatchKind::kSysfsName) continue;
    bool matches_cpu = false;
    for (const std::string& name : table.sysfs_names) {
      if (name == "cpu") matches_cpu = true;
    }
    if (!matches_cpu) continue;
    EXPECT_FALSE(table.intel_models.empty())
        << table.pfm_name << " would shadow other 'cpu' tables";
    for (const int model : table.intel_models) {
      EXPECT_TRUE(models.insert(model).second)
          << "model " << model << " claimed twice";
    }
  }
}

TEST(EventDb, HybridFlavourDifferences) {
  const PmuTable* glc = table_by_name("adl_glc");
  const PmuTable* grt = table_by_name("adl_grt");
  // Same INST_RETIRED encoding surface on both (the libpfm4 bug the
  // paper reported was exactly here).
  ASSERT_NE(glc->find_event("INST_RETIRED"), nullptr);
  ASSERT_NE(grt->find_event("INST_RETIRED"), nullptr);
  EXPECT_NE(glc->find_event("INST_RETIRED")->find_umask("ANY"), nullptr);
  EXPECT_NE(grt->find_event("INST_RETIRED")->find_umask("ANY"), nullptr);
  // Flavour-specific events.
  EXPECT_NE(glc->find_event("TOPDOWN"), nullptr);
  EXPECT_EQ(grt->find_event("TOPDOWN"), nullptr);
  EXPECT_NE(table_by_name("gnr")->find_event("TOPDOWN"), nullptr);
  EXPECT_EQ(table_by_name("srf")->find_event("TOPDOWN"), nullptr);
}

TEST(EventDb, LookupsAreCaseInsensitiveAndFailClosed) {
  EXPECT_NE(table_by_name("ADL_GLC"), nullptr);
  EXPECT_EQ(table_by_name("no_such_pmu"), nullptr);
}

}  // namespace
}  // namespace hetpapi::pfm
