// End-to-end sampling & overflow mode: the PAPI drain loop over the
// simkernel's ABI-faithful sample rings, exact period reconciliation
// against ground truth on hybrid presets, per-core-type attribution,
// transactional arming, chaos degradation, and the per-core-type
// profiler's golden report.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "simkernel/perf_abi.hpp"
#include "telemetry/profiler.hpp"
#include "workload/programs.hpp"
#include "workload/simplemoc.hpp"

namespace hetpapi {
namespace {

using papi::FaultInjectingBackend;
using papi::FaultProfile;
using papi::Library;
using papi::SampleBatch;
using papi::SimBackend;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr sampling_attr(std::uint32_t type, std::uint64_t period) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(CountKind::kInstructions);
  attr.sample_period = period;
  return attr;
}

// ---------------------------------------------------------------------
// Acceptance sweep: on hybrid presets, delivered + lost reconciles the
// stopped counter exactly, sample counts track ground truth within one
// period, and attribution is exact (a worker pinned to one core type
// never produces a sample labelled with — or landing on a cpu of —
// another type).
// ---------------------------------------------------------------------

TEST(Sampling, PeriodReconciliationIsExactOnHybridPresets) {
  constexpr std::uint64_t kPeriod = 2'000'000;
  for (const char* machine : {"raptorlake", "dynamiq"}) {
    SCOPED_TRACE(machine);
    const auto spec = cpumodel::machine_preset_by_name(machine);
    ASSERT_TRUE(spec.has_value());
    SimKernel kernel(*spec);
    SimBackend backend(&kernel);

    const int num_types = static_cast<int>(spec->core_types.size());
    ASSERT_GE(num_types, 2) << "sweep wants hybrid presets";
    std::vector<Tid> tids;
    for (int t = 0; t < num_types; ++t) {
      PhaseSpec phase;
      tids.push_back(kernel.spawn(
          std::make_shared<FixedWorkProgram>(phase, 50'000'000),
          CpuSet::of(
              spec->cpus_of_type(static_cast<cpumodel::CoreTypeId>(t)))));
    }

    auto lib = Library::init(&backend);
    ASSERT_TRUE(lib.has_value());
    std::vector<int> sets;
    for (int t = 0; t < num_types; ++t) {
      auto set = (*lib)->create_eventset();
      ASSERT_TRUE(set.has_value());
      ASSERT_TRUE(
          (*lib)->attach(*set, tids[static_cast<std::size_t>(t)]).is_ok());
      ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
      ASSERT_TRUE((*lib)
                      ->set_overflow(*set, 0, kPeriod,
                                     [](const Library::OverflowEvent&) {})
                      .is_ok());
      ASSERT_TRUE((*lib)->start(*set).is_ok());
      sets.push_back(*set);
    }
    kernel.run_until_idle(std::chrono::seconds(60));

    std::set<std::string> labels_seen;
    for (int t = 0; t < num_types; ++t) {
      SCOPED_TRACE("core type " + std::to_string(t));
      auto values = (*lib)->stop(sets[static_cast<std::size_t>(t)]);
      ASSERT_TRUE(values.has_value());
      auto batch = (*lib)->read_samples(sets[static_cast<std::size_t>(t)]);
      ASSERT_TRUE(batch.has_value());

      const auto counter = static_cast<std::uint64_t>((*values)[0]);
      const std::uint64_t crossings = counter / kPeriod;
      EXPECT_EQ(batch->samples.size() + batch->lost, crossings)
          << "every period crossing is exactly one delivered or lost record";

      const auto* truth =
          kernel.ground_truth(tids[static_cast<std::size_t>(t)]);
      ASSERT_NE(truth, nullptr);
      const std::uint64_t truth_ins =
          truth->per_type[static_cast<std::size_t>(t)].instructions;
      EXPECT_EQ(counter, truth_ins)
          << "pinned worker's counter equals its exact ground truth";
      const long long drift =
          static_cast<long long>(batch->samples.size() * kPeriod) -
          static_cast<long long>(truth_ins);
      EXPECT_LE(drift, 0);
      EXPECT_LE(-drift, static_cast<long long>(kPeriod))
          << "samples x period tracks ground truth within one period";

      const std::vector<int> my_cpus =
          spec->cpus_of_type(static_cast<cpumodel::CoreTypeId>(t));
      const std::set<int> cpu_set(my_cpus.begin(), my_cpus.end());
      std::set<std::string> my_labels;
      for (const papi::Sample& sample : batch->samples) {
        EXPECT_EQ(cpu_set.count(sample.cpu), 1u)
            << "sample landed on a foreign cpu " << sample.cpu;
        EXPECT_FALSE(sample.core_type.empty());
        my_labels.insert(sample.core_type);
        EXPECT_EQ(sample.period, kPeriod);
      }
      EXPECT_LE(my_labels.size(), 1u)
          << "a pinned worker's samples carry one core-type label";
      for (const std::string& label : my_labels) {
        EXPECT_EQ(labels_seen.count(label), 0u)
            << "label " << label << " already claimed by another core type";
        labels_seen.insert(label);
      }
    }
  }
}

TEST(Sampling, SamplesCarryPhaseIpsFromTheWorkload) {
  const auto spec = cpumodel::machine_preset_by_name("raptorlake");
  ASSERT_TRUE(spec.has_value());
  SimKernel kernel(*spec);
  SimBackend backend(&kernel);
  workload::SimpleMocConfig moc;
  const Tid tid =
      kernel.spawn(std::make_shared<workload::SimpleMocProgram>(moc),
                   CpuSet::of(spec->cpus_of_type(0)));

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  // Off-round period (coprime with the 200k-instruction segment) so the
  // crossings spread across phases instead of aliasing onto one.
  ASSERT_TRUE((*lib)
                  ->set_overflow(*set, 0, 1'111'111,
                                 [](const Library::OverflowEvent&) {})
                  .is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(60));
  ASSERT_TRUE((*lib)->stop(*set).has_value());
  auto batch = (*lib)->read_samples(*set);
  ASSERT_TRUE(batch.has_value());
  ASSERT_GT(batch->samples.size(), 0u);

  std::set<std::string> symbols;
  for (const papi::Sample& sample : batch->samples) {
    const workload::SimpleMocPhase* phase =
        workload::simplemoc_phase_for_ip(sample.ip);
    ASSERT_NE(phase, nullptr)
        << "sample ip 0x" << std::hex << sample.ip
        << " maps to no workload phase";
    symbols.insert(phase->symbol);
  }
  EXPECT_GE(symbols.size(), 2u)
      << "an off-round period must hit more than one phase";
}

TEST(Sampling, RepeatedDrainsReturnEachRecordExactlyOnce) {
  const auto spec = cpumodel::machine_preset_by_name("raptorlake");
  ASSERT_TRUE(spec.has_value());
  SimKernel kernel(*spec);
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 200'000'000), CpuSet::of({0}));

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  constexpr std::uint64_t kPeriod = 1'000'000;
  ASSERT_TRUE((*lib)
                  ->set_overflow(*set, 0, kPeriod,
                                 [](const Library::OverflowEvent&) {})
                  .is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());

  // Drain while the workload is still running...
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  kernel.run_for(std::chrono::milliseconds(5));
  auto mid = (*lib)->read_samples(*set);
  ASSERT_TRUE(mid.has_value());
  delivered += mid->samples.size();
  lost += mid->lost;

  // ...and again after it finished: the two passes together see every
  // record exactly once.
  kernel.run_until_idle(std::chrono::seconds(60));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  auto tail = (*lib)->read_samples(*set);
  ASSERT_TRUE(tail.has_value());
  delivered += tail->samples.size();
  lost += tail->lost;

  const auto counter = static_cast<std::uint64_t>((*values)[0]);
  EXPECT_EQ(delivered + lost, counter / kPeriod);
  auto empty = (*lib)->read_samples(*set);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->samples.empty()) << "a drained ring stays drained";
  EXPECT_EQ(empty->lost, 0u);
}

TEST(Sampling, ReadSamplesRequiresOverflowMode) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  EXPECT_EQ((*lib)->read_samples(*set).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*lib)->read_samples(99).status().code(),
            StatusCode::kNoEventSet);
}

// ---------------------------------------------------------------------
// Transactional arming: when re-opening the slots in sampling mode
// fails, set_overflow must roll the EventSet back to its counting
// layout instead of leaving it half-armed or empty.
// ---------------------------------------------------------------------

/// Forwards everything to a SimBackend but refuses sampling-mode opens
/// while `deny_sampling` is set — the shape of a kernel that allows
/// counting but rejects the sampling variant of the same event.
class SamplingDeniedBackend final : public papi::Backend {
 public:
  explicit SamplingDeniedBackend(SimBackend* inner) : inner_(inner) {}

  bool deny_sampling = false;

  Expected<int> perf_event_open(const PerfEventAttr& attr, Tid tid, int cpu,
                                int group_fd, std::uint64_t flags) override {
    if (deny_sampling && attr.sample_period > 0) {
      return make_error(StatusCode::kPermission,
                        "sampling mode refused by policy");
    }
    return inner_->perf_event_open(attr, tid, cpu, group_fd, flags);
  }
  Status perf_ioctl(int fd, papi::PerfIoctl op, std::uint32_t flags) override {
    return inner_->perf_ioctl(fd, op, flags);
  }
  Expected<papi::PerfValue> perf_read(int fd) override {
    return inner_->perf_read(fd);
  }
  Expected<std::vector<papi::PerfValue>> perf_read_group(int fd) override {
    return inner_->perf_read_group(fd);
  }
  Expected<std::uint64_t> perf_rdpmc(int fd) override {
    return inner_->perf_rdpmc(fd);
  }
  Status perf_close(int fd) override { return inner_->perf_close(fd); }
  Expected<const simkernel::PerfUserPage*> perf_mmap_user_page(
      int fd) override {
    return inner_->perf_mmap_user_page(fd);
  }
  Status perf_set_overflow_handler(int fd, OverflowHandler handler) override {
    return inner_->perf_set_overflow_handler(fd, std::move(handler));
  }
  Expected<simkernel::PerfRingView> perf_mmap_ring(int fd) override {
    return inner_->perf_mmap_ring(fd);
  }
  Expected<bool> perf_ring_poll(int fd) override {
    return inner_->perf_ring_poll(fd);
  }
  const pfm::Host& host() const override { return inner_->host(); }
  Tid default_target() const override { return inner_->default_target(); }

 private:
  SimBackend* inner_;
};

TEST(SamplingOverflow, ArmingFailureRollsBackToCountingLayout) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  SamplingDeniedBackend denier(&backend);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 500'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);

  auto lib = Library::init(&denier);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_CYC").is_ok());

  denier.deny_sampling = true;
  const Status armed = (*lib)->set_overflow(
      *set, 0, 1'000'000, [](const Library::OverflowEvent&) {});
  EXPECT_FALSE(armed.is_ok());

  // The set must still work in its original counting layout.
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_for(std::chrono::milliseconds(5));
  auto counting = (*lib)->stop(*set);
  ASSERT_TRUE(counting.has_value());
  ASSERT_EQ(counting->size(), 2u);
  EXPECT_GT((*counting)[0], 0);
  EXPECT_GT((*counting)[1], 0);
  EXPECT_EQ((*lib)->read_samples(*set).status().code(),
            StatusCode::kInvalidArgument)
      << "a rolled-back set is a counting set";

  // Once the policy clears, the same set arms and samples flow.
  denier.deny_sampling = false;
  constexpr std::uint64_t kPeriod = 1'000'000;
  ASSERT_TRUE((*lib)
                  ->set_overflow(*set, 0, kPeriod,
                                 [](const Library::OverflowEvent&) {})
                  .is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(60));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  auto batch = (*lib)->read_samples(*set);
  ASSERT_TRUE(batch.has_value());
  EXPECT_GT(batch->samples.size(), 0u);
  EXPECT_EQ(batch->samples.size() + batch->lost,
            static_cast<std::uint64_t>((*values)[0]) / kPeriod);
}

// ---------------------------------------------------------------------
// Ring ABI: the mmap'd ring a tool sees must decode with nothing but
// the kernel's perf_event ABI rules.
// ---------------------------------------------------------------------

TEST(SamplingRing, MappedRingDecodesWithPlainAbiRules) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({2}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  ASSERT_NE(pmu, nullptr);
  auto fd = kernel.perf_event_open(sampling_attr(pmu->type_id, 10'000'000),
                                   tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(10));

  auto view = kernel.perf_mmap_ring(*fd);
  ASSERT_TRUE(view.has_value());
  ASSERT_NE(view->page, nullptr);
  EXPECT_EQ(view->page->data_offset, 4096u)
      << "data area follows the control page, kernel-style";
  EXPECT_EQ(view->page->data_size, view->size);
  EXPECT_EQ(view->sample_type, simkernel::kSampleTypeDefault);

  // Walk the ring by hand — header rules only, no simulator helpers —
  // and leave the tail untouched.
  simkernel::PerfRingCursor cursor(*view);
  simkernel::PerfEventHeader header;
  std::uint8_t body[64];
  std::vector<simkernel::PerfSampleParsed> decoded;
  std::uint64_t last_time = 0;
  while (cursor.next(&header, body, sizeof body)) {
    ASSERT_EQ(header.type, simkernel::kPerfRecordSample);
    EXPECT_EQ(header.misc, simkernel::kPerfRecordMiscUser);
    EXPECT_EQ(header.size,
              sizeof(simkernel::PerfEventHeader) +
                  simkernel::perf_sample_body_size(view->sample_type));
    simkernel::PerfSampleParsed parsed;
    ASSERT_TRUE(simkernel::perf_parse_sample(
        view->sample_type, body, header.size - sizeof header, &parsed));
    EXPECT_EQ(parsed.cpu, 2u);
    EXPECT_EQ(parsed.tid, static_cast<std::uint32_t>(tid));
    EXPECT_EQ(parsed.period, 10'000'000u);
    EXPECT_GE(parsed.time, last_time);
    last_time = parsed.time;
    decoded.push_back(parsed);
  }
  EXPECT_FALSE(cursor.malformed());
  ASSERT_EQ(decoded.size(), 5u) << "50M instructions / 10M period";

  // The simulator's own reader agrees record-for-record — the manual
  // walk did not consume anything (commit() was never called).
  auto samples = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(samples.has_value());
  ASSERT_EQ(samples->size(), decoded.size());
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ((*samples)[i].time_ns, decoded[i].time);
    EXPECT_EQ((*samples)[i].cpu, static_cast<int>(decoded[i].cpu));
  }
}

TEST(SamplingRing, LostRecordsAppearInBandBeforeLaterSamples) {
  SimKernel::Config config;
  config.perf.sample_ring_capacity = 4;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  constexpr std::uint64_t kWork = 10'000'000'000ULL;
  constexpr std::uint64_t kPeriod = 1'000'000;
  const Tid tid = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, kWork),
                               CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(sampling_attr(pmu->type_id, kPeriod), tid,
                                   -1, -1);
  ASSERT_TRUE(fd.has_value());

  // Overflow the capacity-4 ring, drain it, then let the writer refill:
  // the first record of the refill must be the in-band LOST entry
  // covering the drop window.
  kernel.run_for(std::chrono::milliseconds(50));
  auto first = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->size(), 4u) << "capacity-bounded first drain";
  std::uint64_t delivered = first->size();

  kernel.run_until_idle(std::chrono::seconds(60));
  auto view = kernel.perf_mmap_ring(*fd);
  ASSERT_TRUE(view.has_value());
  simkernel::PerfRingCursor cursor(*view);
  simkernel::PerfEventHeader header;
  std::uint8_t body[64];
  ASSERT_TRUE(cursor.next(&header, body, sizeof body));
  EXPECT_EQ(header.type, simkernel::kPerfRecordLost)
      << "drops are announced in-band, ahead of newer samples";
  simkernel::PerfLostParsed lost_record;
  ASSERT_TRUE(simkernel::perf_parse_lost(body, header.size - sizeof header,
                                         &lost_record));
  EXPECT_GT(lost_record.lost, 0u);

  auto tail = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(tail.has_value());
  delivered += tail->size();
  auto lost = kernel.perf_lost_samples(*fd);
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(delivered + *lost, kWork / kPeriod)
      << "delivered + lost covers every period crossing exactly";
}

TEST(SamplingRing, WakeupEventsGateRingPollAsEdgeTrigger) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  PerfEventAttr attr = sampling_attr(pmu->type_id, 1'000'000);
  attr.wakeup_events = 2;
  auto fd = kernel.perf_event_open(attr, tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(10));

  auto armed = kernel.perf_ring_poll(*fd);
  ASSERT_TRUE(armed.has_value());
  EXPECT_TRUE(*armed) << "10 samples at wakeup_events=2 raised wakeups";
  auto consumed = kernel.perf_ring_poll(*fd);
  ASSERT_TRUE(consumed.has_value());
  EXPECT_FALSE(*consumed) << "poll consumes the pending wakeups";
  // The hint being consumed does not affect the data path.
  auto samples = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(samples.has_value());
  EXPECT_EQ(samples->size(), 10u);
}

TEST(SamplingRing, UnknownSampleTypeBitsAreRejected) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  PerfEventAttr attr = sampling_attr(pmu->type_id, 1'000'000);
  attr.sample_type = 1ULL << 20;  // a bit the ring writer does not encode
  EXPECT_EQ(kernel.perf_event_open(attr, tid, -1, -1).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Chaos: the drain loop under injected sampling faults. Invariants: no
// record is ever lost silently, degraded slots keep counting, and the
// fd ledger drains to zero.
// ---------------------------------------------------------------------

TEST(SamplingChaos, DeniedRingMmapDegradesToCountingMode) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  FaultProfile profile;
  profile.name = "ring-denied";
  profile.ring_mmap_denied = true;
  FaultInjectingBackend injector(&backend, profile, 42);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  {
    auto lib = Library::init(&injector);
    ASSERT_TRUE(lib.has_value());
    auto set = (*lib)->create_eventset();
    ASSERT_TRUE(set.has_value());
    ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
    std::uint64_t callbacks = 0;
    ASSERT_TRUE((*lib)
                    ->set_overflow(*set, 0, 10'000'000,
                                   [&](const Library::OverflowEvent& event) {
                                     callbacks += event.periods;
                                   })
                    .is_ok())
        << "a denied ring must not fail arming — callbacks still work";
    ASSERT_TRUE((*lib)->start(*set).is_ok());
    kernel.run_until_idle(std::chrono::seconds(10));
    auto batch = (*lib)->read_samples(*set);
    ASSERT_TRUE(batch.has_value());
    EXPECT_TRUE(batch->samples.empty()) << "no ring, no samples";
    EXPECT_GT(batch->rings_denied, 0);
    auto values = (*lib)->stop(*set);
    ASSERT_TRUE(values.has_value());
    EXPECT_GE((*values)[0], 50'000'000) << "counting survives the denial";
    EXPECT_EQ(callbacks, 5u) << "overflow delivery survives the denial";
  }
  EXPECT_EQ(injector.open_fd_count(), 0u)
      << "leaked: " << testing::PrintToString(injector.leaked_fds());
  EXPECT_EQ(backend.open_fd_count(), 0u);
}

TEST(SamplingChaos, DroppedWakeupsAndStalledDrainsNeverLoseRecords) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  const auto profile = FaultProfile::named("sampling-chaos");
  ASSERT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&backend, *profile, 7);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 300'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  {
    auto lib = Library::init(&injector);
    ASSERT_TRUE(lib.has_value());
    auto set = (*lib)->create_eventset();
    ASSERT_TRUE(set.has_value());
    ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
    constexpr std::uint64_t kPeriod = 1'000'000;
    ASSERT_TRUE((*lib)
                    ->set_overflow(*set, 0, kPeriod,
                                   [](const Library::OverflowEvent&) {})
                    .is_ok());
    ASSERT_TRUE((*lib)->start(*set).is_ok());

    // Periodic drains while faults fire: stalled passes leave records
    // queued, dropped wakeups are drained past anyway.
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    int stalled_passes = 0;
    int missed_wakeups = 0;
    for (int i = 0; i < 30; ++i) {
      kernel.run_for(std::chrono::milliseconds(2));
      auto batch = (*lib)->read_samples(*set);
      ASSERT_TRUE(batch.has_value());
      delivered += batch->samples.size();
      lost += batch->lost;
      stalled_passes += batch->drains_stalled;
      missed_wakeups += batch->wakeups_missed;
    }
    kernel.run_until_idle(std::chrono::seconds(60));
    auto values = (*lib)->stop(*set);
    ASSERT_TRUE(values.has_value());

    // A stalled pass only defers records; bounded retries recover them.
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto batch = (*lib)->read_samples(*set);
      ASSERT_TRUE(batch.has_value());
      delivered += batch->samples.size();
      lost += batch->lost;
      if (batch->samples.empty() && batch->drains_stalled == 0) break;
    }

    const auto counter = static_cast<std::uint64_t>((*values)[0]);
    EXPECT_EQ(delivered + lost, counter / kPeriod)
        << "chaos may delay or drop to LOST, never lose silently"
        << " (stalled passes: " << stalled_passes
        << ", missed wakeups: " << missed_wakeups << ")";
  }
  EXPECT_EQ(injector.open_fd_count(), 0u)
      << "leaked: " << testing::PrintToString(injector.leaked_fds());
  EXPECT_EQ(backend.open_fd_count(), 0u);
}

// ---------------------------------------------------------------------
// The profiler report is a pure function of (machine, options): golden
// byte-for-byte and identical across repeated runs.
// ---------------------------------------------------------------------

TEST(SamplingGolden, ProfilerReportIsDeterministic) {
  telemetry::ProfileOptions options;
  auto first = telemetry::run_simplemoc_profile(options);
  auto second = telemetry::run_simplemoc_profile(options);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(first->validated);
  EXPECT_EQ(first->table, second->table);
}

TEST(SamplingGolden, RaptorlakeProfileMatchesGoldenByteForByte) {
  telemetry::ProfileOptions options;
  options.machine = "raptorlake";
  auto report = telemetry::run_simplemoc_profile(options);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->validated);
  const char* golden =
      R"(hetpapi_profile machine=raptorlake event=PAPI_TOT_INS period=1111111 workers=4 segments=64

function                       ip             intel_core     intel_atom          total
simplemoc_attenuate_fluxes     0x402000               12             12             24
simplemoc_tally_scalar_flux    0x403000                6              6             12
simplemoc_xs_lookup            0x401000                4              4              8
total                          -                      22             22             44

samples=44 lost=0 malformed=0 rings_denied=0 drains_stalled=0 wakeups_missed=0
worker 0 core_type=intel_core samples=11 lost=0 counter=12801800 truth=12801800 foreign=0 ok
worker 1 core_type=intel_atom samples=11 lost=0 counter=12801800 truth=12801800 foreign=0 ok
worker 2 core_type=intel_core samples=11 lost=0 counter=12801800 truth=12801800 foreign=0 ok
worker 3 core_type=intel_atom samples=11 lost=0 counter=12801800 truth=12801800 foreign=0 ok
validation: PASS
)";
  EXPECT_EQ(report->table, golden);
}

TEST(SamplingGolden, DynamiqProfileMatchesGoldenByteForByte) {
  telemetry::ProfileOptions options;
  options.machine = "dynamiq";
  auto report = telemetry::run_simplemoc_profile(options);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->validated);
  const char* golden =
      R"(hetpapi_profile machine=dynamiq event=PAPI_TOT_INS period=1111111 workers=4 segments=64

function                       ip          capacity-1024   capacity-744   capacity-286          total
simplemoc_attenuate_fluxes     0x402000               12              6              6             24
simplemoc_tally_scalar_flux    0x403000                6              3              3             12
simplemoc_xs_lookup            0x401000                4              2              2              8
total                          -                      22             11             11             44

samples=44 lost=0 malformed=0 rings_denied=0 drains_stalled=0 wakeups_missed=0
worker 0 core_type=capacity-1024 samples=11 lost=0 counter=12802700 truth=12802700 foreign=0 ok
worker 1 core_type=capacity-744 samples=11 lost=0 counter=12802700 truth=12802700 foreign=0 ok
worker 2 core_type=capacity-286 samples=11 lost=0 counter=12802700 truth=12802700 foreign=0 ok
worker 3 core_type=capacity-1024 samples=11 lost=0 counter=12802700 truth=12802700 foreign=0 ok
validation: PASS
)";
  EXPECT_EQ(report->table, golden);
}

}  // namespace
}  // namespace hetpapi
