// The sysdetect component's structured report and its text rendering.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/sysdetect.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::papi {
namespace {

using simkernel::SimKernel;

SysdetectReport report_for(const cpumodel::MachineSpec& machine) {
  SimKernel kernel(machine);
  pfm::SimHost host(&kernel);
  pfm::PfmLibrary pfmlib;
  EXPECT_TRUE(pfmlib.initialize(host).is_ok());
  return build_sysdetect_report(host, pfmlib);
}

TEST(Sysdetect, RaptorLakeReportIsComplete) {
  const SysdetectReport report =
      report_for(cpumodel::raptor_lake_i7_13700());
  EXPECT_TRUE(report.hardware.hybrid);
  EXPECT_EQ(report.hardware.total_cpus, 24);
  ASSERT_EQ(report.hardware.detection.core_types.size(), 2u);
  // Every PMU the pfm scan bound appears with its metadata.
  ASSERT_GE(report.pmus.size(), 4u);
  bool saw_glc = false;
  for (const PmuDeviceInfo& pmu : report.pmus) {
    EXPECT_FALSE(pmu.pfm_name.empty());
    EXPECT_GT(pmu.num_events, 0);
    if (pmu.pfm_name == "adl_glc") {
      saw_glc = true;
      EXPECT_TRUE(pmu.is_core);
      EXPECT_EQ(pmu.sysfs_name, "cpu_core");
      EXPECT_EQ(pmu.cpus.size(), 16u);
    }
  }
  EXPECT_TRUE(saw_glc);
}

TEST(Sysdetect, TextRenderingContainsTheKeyFacts) {
  const SysdetectReport report =
      report_for(cpumodel::raptor_lake_i7_13700());
  const std::string text = report.to_text();
  EXPECT_NE(text.find("hybrid       : yes"), std::string::npos);
  EXPECT_NE(text.find("cpuid_leaf_1a"), std::string::npos);
  EXPECT_NE(text.find("intel_core"), std::string::npos);
  EXPECT_NE(text.find("intel_atom"), std::string::npos);
  EXPECT_NE(text.find("adl_grt"), std::string::npos);
  EXPECT_NE(text.find("13th Gen"), std::string::npos);
}

TEST(Sysdetect, ArmReportUsesCapacityLabels) {
  const SysdetectReport report = report_for(cpumodel::orangepi800_rk3399());
  EXPECT_TRUE(report.hardware.hybrid);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("cpu_capacity"), std::string::npos);
  EXPECT_NE(text.find("capacity-1024"), std::string::npos);
  EXPECT_NE(text.find("arm_a53"), std::string::npos);
}

TEST(Sysdetect, HomogeneousReportSaysNo) {
  const SysdetectReport report = report_for(cpumodel::homogeneous_xeon());
  EXPECT_FALSE(report.hardware.hybrid);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("hybrid       : no"), std::string::npos);
}

}  // namespace
}  // namespace hetpapi::papi
