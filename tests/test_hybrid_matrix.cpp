// §V-4: "ideally we will cover all the tests the current [suite] does,
// but on all combinations of P and E-cores. This increases the surface
// area and will be a lot of work." — this file is that matrix, made
// cheap by parameterized tests: every preset × every pinning flavour ×
// both hybrid machines, checking the conservation invariant the §IV-F
// validation establishes (derived counts == ground truth, split
// correctly per core type).
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

enum class Pinning {
  kBigOnly,
  kLittleOnly,
  kOneOfEach,  // affinity to one big + one little cpu
  kFree,
};

std::string to_string(Pinning pinning) {
  switch (pinning) {
    case Pinning::kBigOnly: return "BigOnly";
    case Pinning::kLittleOnly: return "LittleOnly";
    case Pinning::kOneOfEach: return "OneOfEach";
    case Pinning::kFree: return "Free";
  }
  return "?";
}

struct MatrixCase {
  std::string machine_name;  // "raptorlake" | "orangepi"
  std::string preset;
  CountKind kind;
  Pinning pinning;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.machine_name + "_" + info.param.preset + "_" +
                     to_string(info.param.pinning);
  for (char& c : name) {
    if (c == ':' || c == '-') c = '_';
  }
  return name;
}

class HybridMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(HybridMatrixTest, DerivedPresetMatchesGroundTruthPerCoreType) {
  const MatrixCase& param = GetParam();
  const cpumodel::MachineSpec machine = param.machine_name == "orangepi"
                                            ? cpumodel::orangepi800_rk3399()
                                            : cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.sched.migration_rate_hz = 60.0;
  SimKernel kernel(machine, config);
  SimBackend backend(&kernel);

  // Pick the pinning cpus: type 0 is the big class on both machines.
  const std::vector<int> big = machine.cpus_of_type(0);
  const std::vector<int> little = machine.cpus_of_type(1);
  CpuSet affinity;
  switch (param.pinning) {
    case Pinning::kBigOnly: affinity = CpuSet::of({big.front()}); break;
    case Pinning::kLittleOnly:
      affinity = CpuSet::of({little.front()});
      break;
    case Pinning::kOneOfEach:
      affinity = CpuSet::of({big.front(), little.front()});
      break;
    case Pinning::kFree:
      affinity = CpuSet::all(machine.num_cpus());
      break;
  }

  PhaseSpec phase;
  phase.flops_per_instr = 1.0;
  phase.llc_refs_per_kinstr = 8.0;
  phase.llc_miss_ratio = 0.3;
  phase.branches_per_kinstr = 80.0;
  phase.branch_miss_ratio = 0.02;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 300'000'000), affinity);
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;  // exact conservation check
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  const Status added = (*lib)->add_event(*set, param.preset);
  ASSERT_TRUE(added.is_ok()) << added.to_string();

  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();

  const auto* truth = kernel.ground_truth(tid);
  ASSERT_NE(truth, nullptr);
  std::uint64_t expected = 0;
  std::uint64_t big_part = 0;
  for (std::size_t t = 0; t < truth->per_type.size(); ++t) {
    expected += truth->per_type[t].get(param.kind);
    if (t == 0) big_part = truth->per_type[t].get(param.kind);
  }
  EXPECT_EQ(static_cast<std::uint64_t>((*values)[0]), expected)
      << "derived sum must equal ground truth exactly";

  // Pinning semantics: work lands only where the mask allows.
  switch (param.pinning) {
    case Pinning::kBigOnly:
      EXPECT_EQ(big_part, expected);
      break;
    case Pinning::kLittleOnly:
      EXPECT_EQ(big_part, 0u);
      break;
    case Pinning::kOneOfEach:
    case Pinning::kFree:
      // No constraint: the scheduler may favour either side, the sum
      // above is the invariant.
      break;
  }
}

std::vector<MatrixCase> make_cases() {
  const std::pair<const char*, CountKind> presets[] = {
      {"PAPI_TOT_INS", CountKind::kInstructions},
      {"PAPI_TOT_CYC", CountKind::kCycles},
      {"PAPI_L3_TCA", CountKind::kLlcReferences},
      {"PAPI_L3_TCM", CountKind::kLlcMisses},
      {"PAPI_BR_INS", CountKind::kBranches},
      {"PAPI_BR_MSP", CountKind::kBranchMisses},
      {"PAPI_DP_OPS", CountKind::kFlopsDp},
  };
  const Pinning pinnings[] = {Pinning::kBigOnly, Pinning::kLittleOnly,
                              Pinning::kOneOfEach, Pinning::kFree};
  std::vector<MatrixCase> cases;
  for (const char* machine : {"raptorlake", "orangepi"}) {
    for (const auto& [preset, kind] : presets) {
      for (const Pinning pinning : pinnings) {
        cases.push_back(MatrixCase{machine, preset, kind, pinning});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, HybridMatrixTest,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace hetpapi
