// §V-4: "ideally we will cover all the tests the current [suite] does,
// but on all combinations of P and E-cores. This increases the surface
// area and will be a lot of work." — this file is that matrix, made
// cheap by parameterized tests: every preset × every pinning flavour ×
// both hybrid machines, checking the conservation invariant the §IV-F
// validation establishes (derived counts == ground truth, split
// correctly per core type).
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

enum class Pinning {
  kBigOnly,
  kLittleOnly,
  kOneOfEach,  // affinity to one big + one little cpu
  kFree,
};

std::string to_string(Pinning pinning) {
  switch (pinning) {
    case Pinning::kBigOnly: return "BigOnly";
    case Pinning::kLittleOnly: return "LittleOnly";
    case Pinning::kOneOfEach: return "OneOfEach";
    case Pinning::kFree: return "Free";
  }
  return "?";
}

struct MatrixCase {
  std::string machine_name;  // "raptorlake" | "orangepi"
  std::string preset;
  CountKind kind;
  Pinning pinning;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = info.param.machine_name + "_" + info.param.preset + "_" +
                     to_string(info.param.pinning);
  for (char& c : name) {
    if (c == ':' || c == '-') c = '_';
  }
  return name;
}

/// Scope guard: when it runs (after the test's Library is destroyed),
/// zero perf events may still be open in the simulated kernel.
struct FdLeakGuard {
  explicit FdLeakGuard(const SimBackend* b) : guarded(b) {}
  ~FdLeakGuard() {
    EXPECT_EQ(guarded->open_fd_count(), 0u) << "leaked perf fds at teardown";
  }
  const SimBackend* guarded;
};

class HybridMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(HybridMatrixTest, DerivedPresetMatchesGroundTruthPerCoreType) {
  const MatrixCase& param = GetParam();
  const cpumodel::MachineSpec machine = param.machine_name == "orangepi"
                                            ? cpumodel::orangepi800_rk3399()
                                            : cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.sched.migration_rate_hz = 60.0;
  SimKernel kernel(machine, config);
  SimBackend backend(&kernel);
  FdLeakGuard leak_guard(&backend);

  // Pick the pinning cpus: type 0 is the big class on both machines.
  const std::vector<int> big = machine.cpus_of_type(0);
  const std::vector<int> little = machine.cpus_of_type(1);
  CpuSet affinity;
  switch (param.pinning) {
    case Pinning::kBigOnly: affinity = CpuSet::of({big.front()}); break;
    case Pinning::kLittleOnly:
      affinity = CpuSet::of({little.front()});
      break;
    case Pinning::kOneOfEach:
      affinity = CpuSet::of({big.front(), little.front()});
      break;
    case Pinning::kFree:
      affinity = CpuSet::all(machine.num_cpus());
      break;
  }

  PhaseSpec phase;
  phase.flops_per_instr = 1.0;
  phase.llc_refs_per_kinstr = 8.0;
  phase.llc_miss_ratio = 0.3;
  phase.branches_per_kinstr = 80.0;
  phase.branch_miss_ratio = 0.02;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 300'000'000), affinity);
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;  // exact conservation check
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  const Status added = (*lib)->add_event(*set, param.preset);
  ASSERT_TRUE(added.is_ok()) << added.to_string();

  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();

  const auto* truth = kernel.ground_truth(tid);
  ASSERT_NE(truth, nullptr);
  std::uint64_t expected = 0;
  std::uint64_t big_part = 0;
  for (std::size_t t = 0; t < truth->per_type.size(); ++t) {
    expected += truth->per_type[t].get(param.kind);
    if (t == 0) big_part = truth->per_type[t].get(param.kind);
  }
  EXPECT_EQ(static_cast<std::uint64_t>((*values)[0]), expected)
      << "derived sum must equal ground truth exactly";

  // Pinning semantics: work lands only where the mask allows.
  switch (param.pinning) {
    case Pinning::kBigOnly:
      EXPECT_EQ(big_part, expected);
      break;
    case Pinning::kLittleOnly:
      EXPECT_EQ(big_part, 0u);
      break;
    case Pinning::kOneOfEach:
    case Pinning::kFree:
      // No constraint: the scheduler may favour either side, the sum
      // above is the invariant.
      break;
  }
}

// --- qualified-read matrix ---------------------------------------------------
// Every cpumodel × event flavour: derived preset, explicitly qualified
// native, and a mixed set with a folded uncore event. Checks the §V-2
// qualified read invariants — the breakdown's signed sum reproduces the
// transparent total, every part carries the right core-type label, and
// each per-PMU part equals the per-type ground truth exactly.

enum class EventFlavor { kDerivedPreset, kQualifiedNative, kMixedUncore };

std::string to_string(EventFlavor flavor) {
  switch (flavor) {
    case EventFlavor::kDerivedPreset: return "DerivedPreset";
    case EventFlavor::kQualifiedNative: return "QualifiedNative";
    case EventFlavor::kMixedUncore: return "MixedUncore";
  }
  return "?";
}

cpumodel::MachineSpec machine_by_name(const std::string& name) {
  auto machine = cpumodel::machine_preset_by_name(name);
  return machine.has_value() ? *machine : cpumodel::raptor_lake_i7_13700();
}

struct QualifiedCase {
  std::string machine_name;  // any cpumodel::machine_preset_names() entry
  EventFlavor flavor;
};

std::string qualified_case_name(
    const ::testing::TestParamInfo<QualifiedCase>& info) {
  return info.param.machine_name + "_" + to_string(info.param.flavor);
}

class QualifiedMatrixTest : public ::testing::TestWithParam<QualifiedCase> {};

TEST_P(QualifiedMatrixTest, BreakdownSumsToTotalAndMatchesGroundTruth) {
  const QualifiedCase& param = GetParam();
  const cpumodel::MachineSpec machine = machine_by_name(param.machine_name);
  SimKernel::Config config;
  config.sched.migration_rate_hz = 60.0;
  SimKernel kernel(machine, config);
  SimBackend backend(&kernel);
  FdLeakGuard leak_guard(&backend);

  PhaseSpec phase;
  phase.llc_refs_per_kinstr = 8.0;
  phase.llc_miss_ratio = 0.3;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 200'000'000),
      CpuSet::all(machine.num_cpus()));
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;  // exact conservation check
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());

  const auto core_pmus = (*lib)->pfm().default_pmus();
  std::size_t expected_parts = 0;
  switch (param.flavor) {
    case EventFlavor::kDerivedPreset:
      ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
      expected_parts = core_pmus.size();
      break;
    case EventFlavor::kQualifiedNative: {
      const auto native = papi::native_for_kind(*core_pmus.front()->table,
                                                CountKind::kInstructions);
      ASSERT_TRUE(native.has_value());
      ASSERT_TRUE((*lib)
                      ->add_event(*set, core_pmus.front()->table->pfm_name +
                                            "::" + *native)
                      .is_ok());
      expected_parts = 1;
      break;
    }
    case EventFlavor::kMixedUncore:
      ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
      ASSERT_TRUE(
          (*lib)->add_event(*set, "unc_imc_0::UNC_M_CAS_COUNT:RD").is_ok());
      expected_parts = core_pmus.size();
      // Folded uncore: the mixed set holds one extra perf group served by
      // the same perf_event component, not a separate exclusive path.
      {
        const auto groups = (*lib)->eventset_group_count(*set);
        ASSERT_TRUE(groups.has_value());
        EXPECT_EQ(*groups, static_cast<int>(core_pmus.size()) + 1);
      }
      break;
  }

  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto values = (*lib)->read(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();
  auto readings = (*lib)->read_qualified(*set);
  ASSERT_TRUE(readings.has_value()) << readings.status().to_string();
  ASSERT_TRUE((*lib)->stop(*set).has_value());

  ASSERT_EQ(readings->size(), values->size());
  const papi::QualifiedReading& first = readings->front();
  EXPECT_EQ(first.total, (*values)[0])
      << "qualified total must equal the transparent read";
  ASSERT_EQ(first.parts.size(), expected_parts);
  long long signed_sum = 0;
  for (const papi::QualifiedValue& part : first.parts) {
    signed_sum += part.sign * part.value;
    EXPECT_EQ(part.core_type, (*lib)->core_type_for_pmu(part.pmu_name));
    if (machine.is_hybrid()) {
      EXPECT_FALSE(part.core_type.empty())
          << part.pmu_name << " must be attributed to a core type";
    }
  }
  EXPECT_EQ(signed_sum, first.total);

  // Each per-PMU part is exactly the per-type ground truth: the PMU's
  // first cpu identifies the machine core type it serves.
  const auto* truth = kernel.ground_truth(tid);
  ASSERT_NE(truth, nullptr);
  for (const papi::QualifiedValue& part : first.parts) {
    const pfm::ActivePmu* pmu = (*lib)->pfm().find_pmu(part.pmu_name);
    ASSERT_NE(pmu, nullptr);
    // An empty cpu list means "all cpus" — the traditional single-PMU
    // sysfs layout of homogeneous machines; cpu 0 stands in.
    const int first_cpu = pmu->cpus.empty() ? 0 : pmu->cpus.front();
    const auto type = static_cast<std::size_t>(
        machine.cpus[static_cast<std::size_t>(first_cpu)].type);
    ASSERT_LT(type, truth->per_type.size());
    EXPECT_EQ(static_cast<std::uint64_t>(part.value),
              truth->per_type[type].get(CountKind::kInstructions))
        << part.pmu_name << " part vs ground truth of core type " << type;
  }

  if (param.flavor == EventFlavor::kMixedUncore) {
    // The uncore slot reads alongside the derived preset and its single
    // constituent is unattributed to any core type.
    const papi::QualifiedReading& uncore = readings->back();
    ASSERT_EQ(uncore.parts.size(), 1u);
    EXPECT_EQ(uncore.parts[0].pmu_name, "unc_imc_0");
    EXPECT_TRUE(uncore.parts[0].core_type.empty());
    EXPECT_GT(uncore.total, 0) << "memory traffic must have been counted";
  }
}

std::vector<QualifiedCase> make_qualified_cases() {
  std::vector<QualifiedCase> cases;
  // Every machine preset, including the three-PMU hybrids (Meteor-Lake-
  // like P/E/LP-E and the DynamIQ big/mid/little triple).
  for (const char* machine : {"raptorlake", "orangepi", "xeon", "tritype",
                              "meteorlake", "dynamiq"}) {
    cases.push_back({machine, EventFlavor::kDerivedPreset});
    cases.push_back({machine, EventFlavor::kQualifiedNative});
    // The IMC uncore PMU rides along with RAPL on the Intel models only.
    if (machine_by_name(machine).rapl.present) {
      cases.push_back({machine, EventFlavor::kMixedUncore});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, QualifiedMatrixTest,
                         ::testing::ValuesIn(make_qualified_cases()),
                         qualified_case_name);

// papi_hybrid_100m-style validation: summing the derived preset's parts
// reproduces the plain single-PMU total — on a homogeneous model the
// derived path *is* the single-PMU path, and on the hybrid model pinned
// to one core type the foreign part reads zero.
TEST(QualifiedMatrixTest, HomogeneousDerivedSumEqualsSinglePmuTotal) {
  const cpumodel::MachineSpec machine = cpumodel::homogeneous_xeon();
  SimKernel kernel(machine);
  SimBackend backend(&kernel);
  FdLeakGuard leak_guard(&backend);
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(PhaseSpec{}, 100'000'000),
      CpuSet::all(machine.num_cpus()));
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value());

  // One set, two slots over the same thread: the preset (derived path)
  // and the explicitly qualified native (single-PMU path) count the same
  // run side by side.
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  const auto core_pmus = (*lib)->pfm().default_pmus();
  ASSERT_EQ(core_pmus.size(), 1u) << "homogeneous model has one core PMU";
  const auto native = papi::native_for_kind(*core_pmus.front()->table,
                                            CountKind::kInstructions);
  ASSERT_TRUE(native.has_value());
  ASSERT_TRUE((*lib)
                  ->add_event(*set, core_pmus.front()->table->pfm_name +
                                        "::" + *native)
                  .is_ok());

  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ((*values)[0], (*values)[1])
      << "derived sum and single-PMU total must agree on a homogeneous model";
}

TEST(QualifiedMatrixTest, PinnedHybridForeignPartReadsZero) {
  const cpumodel::MachineSpec machine = cpumodel::raptor_lake_i7_13700();
  SimKernel kernel(machine);
  SimBackend backend(&kernel);
  FdLeakGuard leak_guard(&backend);
  const std::vector<int> big = machine.cpus_of_type(0);
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(PhaseSpec{}, 100'000'000),
      CpuSet::of({big.front()}));
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto readings = (*lib)->read_qualified(*set);
  ASSERT_TRUE(readings.has_value());
  ASSERT_TRUE((*lib)->stop(*set).has_value());

  ASSERT_EQ(readings->size(), 1u);
  long long p_part = -1, e_part = -1;
  for (const papi::QualifiedValue& part : readings->front().parts) {
    if (part.core_type == "intel_core") p_part = part.value;
    if (part.core_type == "intel_atom") e_part = part.value;
  }
  EXPECT_EQ(p_part, readings->front().total)
      << "pinned to a P core, the P part carries the whole total";
  EXPECT_EQ(e_part, 0) << "the E part of a P-pinned run must be zero";
}

// Three-PMU generalization of the pinned test: on both tri-hybrid
// presets, pin to the *last* (smallest) core type and check that every
// foreign core PMU's part reads zero while the pinned type's part
// carries the whole total. On Meteor Lake that pins to the LP-E island,
// whose CPUID core-kind byte is identical to the E-cores' — only the
// PMU-refined detection tells the parts apart.
class TriHybridPinnedTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TriHybridPinnedTest, ForeignPartsReadZeroPinnedTypeCarriesTotal) {
  const cpumodel::MachineSpec machine = machine_by_name(GetParam());
  ASSERT_EQ(machine.core_types.size(), 3u);
  SimKernel kernel(machine);
  SimBackend backend(&kernel);
  FdLeakGuard leak_guard(&backend);
  const auto pinned_type =
      static_cast<cpumodel::CoreTypeId>(machine.core_types.size() - 1);
  const std::vector<int> pinned_cpus = machine.cpus_of_type(pinned_type);
  ASSERT_FALSE(pinned_cpus.empty());
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(PhaseSpec{}, 100'000'000),
      CpuSet::of({pinned_cpus.front()}));
  backend.set_default_target(tid);

  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(120));
  auto readings = (*lib)->read_qualified(*set);
  ASSERT_TRUE(readings.has_value());
  ASSERT_TRUE((*lib)->stop(*set).has_value());

  ASSERT_EQ(readings->size(), 1u);
  const papi::QualifiedReading& reading = readings->front();
  ASSERT_EQ(reading.parts.size(), 3u)
      << "the derived preset must expand to one part per core PMU";
  EXPECT_GT(reading.total, 0);
  for (const papi::QualifiedValue& part : reading.parts) {
    const pfm::ActivePmu* pmu = (*lib)->pfm().find_pmu(part.pmu_name);
    ASSERT_NE(pmu, nullptr);
    ASSERT_FALSE(pmu->cpus.empty());
    const auto type = machine.cpus[static_cast<std::size_t>(
                                       pmu->cpus.front())].type;
    if (type == pinned_type) {
      EXPECT_EQ(part.value, reading.total)
          << part.pmu_name << " serves the pinned type, must carry all";
    } else {
      EXPECT_EQ(part.value, 0)
          << part.pmu_name << " is foreign to the pinned type";
    }
    EXPECT_FALSE(part.core_type.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(BothTriHybrids, TriHybridPinnedTest,
                         ::testing::Values("meteorlake", "dynamiq"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

std::vector<MatrixCase> make_cases() {
  const std::pair<const char*, CountKind> presets[] = {
      {"PAPI_TOT_INS", CountKind::kInstructions},
      {"PAPI_TOT_CYC", CountKind::kCycles},
      {"PAPI_L3_TCA", CountKind::kLlcReferences},
      {"PAPI_L3_TCM", CountKind::kLlcMisses},
      {"PAPI_BR_INS", CountKind::kBranches},
      {"PAPI_BR_MSP", CountKind::kBranchMisses},
      {"PAPI_DP_OPS", CountKind::kFlopsDp},
  };
  const Pinning pinnings[] = {Pinning::kBigOnly, Pinning::kLittleOnly,
                              Pinning::kOneOfEach, Pinning::kFree};
  std::vector<MatrixCase> cases;
  for (const char* machine : {"raptorlake", "orangepi"}) {
    for (const auto& [preset, kind] : presets) {
      for (const Pinning pinning : pinnings) {
        cases.push_back(MatrixCase{machine, preset, kind, pinning});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, HybridMatrixTest,
                         ::testing::ValuesIn(make_cases()), case_name);

}  // namespace
}  // namespace hetpapi
