// The simulated sysfs/procfs surface: static layout per machine flavour
// and the dynamic attributes (scaling_cur_freq, thermal temps, RAPL
// energy including its 32-bit wrap).
#include <gtest/gtest.h>

#include "base/strings.hpp"
#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using simkernel::CpuSet;
using simkernel::SimKernel;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(Sysfs, RaptorLakeExportsHybridPmuLayout) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  // Per-core-type PMUs with "type" and (hybrid-only) "cpus" files, the
  // §IV-A discovery surface.
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/cpu_core/type"), "4\n");
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/cpu_atom/type"), "8\n");
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/cpu_core/cpus"), "0-15\n");
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/cpu_atom/cpus"), "16-23\n");
  // Uncore-style PMUs use "cpumask" instead.
  EXPECT_TRUE(kernel.sysfs_read("/sys/devices/power/cpumask").has_value());
  EXPECT_FALSE(kernel.sysfs_read("/sys/devices/power/cpus").has_value());
}

TEST(Sysfs, HomogeneousMachineHasTraditionalCpuPmuWithoutCpusFile) {
  SimKernel kernel(cpumodel::homogeneous_xeon());
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/cpu/type"), "4\n");
  EXPECT_FALSE(kernel.sysfs_read("/sys/devices/cpu/cpus").has_value())
      << "the legacy single 'cpu' PMU never grew a cpus file";
}

TEST(Sysfs, CpuCapacityOnlyOnArm) {
  SimKernel intel(cpumodel::raptor_lake_i7_13700());
  EXPECT_FALSE(
      intel.sysfs_read("/sys/devices/system/cpu/cpu0/cpu_capacity")
          .has_value());
  SimKernel arm(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(*arm.sysfs_read("/sys/devices/system/cpu/cpu4/cpu_capacity"),
            "1024\n");
  EXPECT_EQ(*arm.sysfs_read("/sys/devices/system/cpu/cpu0/cpu_capacity"),
            "485\n");
}

TEST(Sysfs, ArmExposesMidrRegisters) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  const auto big_midr = kernel.sysfs_read(
      "/sys/devices/system/cpu/cpu4/regs/identification/midr_el1");
  ASSERT_TRUE(big_midr.has_value());
  const auto value = parse_int(trim(*big_midr));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ((*value >> 4) & 0xFFF, 0xd08) << "Cortex-A72 part number";
  EXPECT_EQ((*value >> 24) & 0xFF, 0x41) << "ARM Ltd implementer";
}

TEST(Sysfs, ProcCpuinfoMatchesVendorFormat) {
  SimKernel intel(cpumodel::raptor_lake_i7_13700());
  const auto intel_info = intel.sysfs_read("/proc/cpuinfo");
  ASSERT_TRUE(intel_info.has_value());
  EXPECT_NE(intel_info->find("GenuineIntel"), std::string::npos);
  EXPECT_NE(intel_info->find("model name"), std::string::npos);

  SimKernel arm(cpumodel::orangepi800_rk3399());
  const auto arm_info = arm.sysfs_read("/proc/cpuinfo");
  ASSERT_TRUE(arm_info.has_value());
  EXPECT_NE(arm_info->find("CPU implementer"), std::string::npos);
  EXPECT_NE(arm_info->find("0xd03"), std::string::npos);
  EXPECT_EQ(arm_info->find("model name"), std::string::npos);
}

TEST(Sysfs, CpufreqLimitsAndDynamicCurrentFrequency) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(
      *kernel.sysfs_read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq"),
      "5100000\n");
  EXPECT_EQ(
      *kernel.sysfs_read("/sys/devices/system/cpu/cpu16/cpufreq/cpuinfo_max_freq"),
      "4100000\n");
  // Dynamic attribute: idle at min frequency, rises under load.
  const auto idle = parse_int(trim(*kernel.sysfs_read(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq")));
  EXPECT_EQ(*idle, 800000);
  PhaseSpec phase;
  kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 10'000'000'000ULL),
               CpuSet::of({0}));
  kernel.run_for(std::chrono::milliseconds(100));
  const auto busy = parse_int(trim(*kernel.sysfs_read(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_cur_freq")));
  EXPECT_GT(*busy, 3'000'000) << "busy core clocks up (kHz)";
}

TEST(Sysfs, ThermalZoneNineIsTheIntelPackageSensor) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(*kernel.sysfs_read("/sys/class/thermal/thermal_zone9/type"),
            "x86_pkg_temp\n");
  const auto temp = parse_int(trim(*kernel.sysfs_read(
      "/sys/class/thermal/thermal_zone9/temp")));
  EXPECT_EQ(*temp, 35000) << "settled at 35 C (millidegrees)";
  // Zones 0-8 are static ACPI sensors.
  EXPECT_EQ(*kernel.sysfs_read("/sys/class/thermal/thermal_zone0/type"),
            "acpitz\n");
  EXPECT_EQ(*kernel.sysfs_read("/sys/class/thermal/thermal_zone0/temp"),
            "27000\n");
}

TEST(Sysfs, RaplPowercapTreeAndEnergyCounter) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(*kernel.sysfs_read(
                "/sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw"),
            "65000000\n");
  EXPECT_EQ(*kernel.sysfs_read(
                "/sys/class/powercap/intel-rapl:0/constraint_1_power_limit_uw"),
            "219000000\n");
  const auto e0 = parse_int(trim(
      *kernel.sysfs_read("/sys/class/powercap/intel-rapl:0/energy_uj")));
  PhaseSpec phase;
  kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 10'000'000'000ULL),
               CpuSet::of({0}));
  kernel.run_for(std::chrono::seconds(1));
  const auto e1 = parse_int(trim(
      *kernel.sysfs_read("/sys/class/powercap/intel-rapl:0/energy_uj")));
  EXPECT_GT(*e1, *e0) << "energy counter advances under load";
}

TEST(Sysfs, NoRaplTreeOnArm) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  EXPECT_FALSE(
      kernel.sysfs_read("/sys/class/powercap/intel-rapl:0/energy_uj")
          .has_value());
  EXPECT_EQ(*kernel.sysfs_read("/sys/class/thermal/thermal_zone0/type"),
            "soc-thermal\n");
}

TEST(Sysfs, TopologyFilesDescribeSmtSiblings) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(*kernel.sysfs_read(
                "/sys/devices/system/cpu/cpu0/topology/thread_siblings_list"),
            "0-1\n");
  EXPECT_EQ(*kernel.sysfs_read(
                "/sys/devices/system/cpu/cpu16/topology/thread_siblings_list"),
            "16\n");
  EXPECT_EQ(*kernel.sysfs_read("/sys/devices/system/cpu/online"), "0-23\n");
}

TEST(Sysfs, ListingWorksThroughTheKernelInterface) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  const auto devices = kernel.sysfs_list("/sys/devices");
  ASSERT_TRUE(devices.has_value());
  EXPECT_NE(std::find(devices->begin(), devices->end(), "cpu_core"),
            devices->end());
  EXPECT_NE(std::find(devices->begin(), devices->end(), "cpu_atom"),
            devices->end());
}

TEST(Sysfs, CpuidEmulationFollowsVendorRules) {
  SimKernel intel(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(*intel.cpuid_core_kind(0), cpumodel::IntelCoreKind::kCore);
  EXPECT_EQ(*intel.cpuid_core_kind(16), cpumodel::IntelCoreKind::kAtom);
  EXPECT_FALSE(intel.cpuid_core_kind(99).has_value());

  SimKernel xeon(cpumodel::homogeneous_xeon());
  EXPECT_EQ(*xeon.cpuid_core_kind(0), cpumodel::IntelCoreKind::kNone)
      << "pre-hybrid parts read leaf 0x1A as zero";

  SimKernel arm(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(arm.cpuid_core_kind(0).status().code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace hetpapi
