// The §IV-B detection ladder: each strategy succeeds on the machines
// that provide its data source, fails cleanly elsewhere, and the ladder
// as a whole degrades in the documented order when sources are removed.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/detect.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::papi {
namespace {

using simkernel::SimKernel;

/// Host wrapper that hides selected paths / the CPUID leaf, to defeat
/// individual detection strategies.
class FilteredHost final : public pfm::Host {
 public:
  explicit FilteredHost(const pfm::Host* inner) : inner_(inner) {}

  std::vector<std::string> hidden_substrings;
  bool hide_cpuid = false;

  Expected<std::string> read_file(std::string_view path) const override {
    if (hidden(path)) {
      return make_error(StatusCode::kNotFound, "hidden by test");
    }
    return inner_->read_file(path);
  }
  Expected<std::vector<std::string>> list_dir(
      std::string_view path) const override {
    if (hidden(path)) {
      return make_error(StatusCode::kNotFound, "hidden by test");
    }
    return inner_->list_dir(path);
  }
  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const override {
    if (hide_cpuid) {
      return make_error(StatusCode::kNotSupported, "hidden by test");
    }
    return inner_->cpuid_core_kind(cpu);
  }
  int num_cpus() const override { return inner_->num_cpus(); }

 private:
  bool hidden(std::string_view path) const {
    for (const std::string& fragment : hidden_substrings) {
      if (path.find(fragment) != std::string_view::npos) return true;
    }
    return false;
  }
  const pfm::Host* inner_;
};

TEST(Detect, OrangePiUsesCpuCapacity) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuCapacity);
  ASSERT_EQ(result.core_types.size(), 2u);
  // Highest capacity first: the A72 pair.
  EXPECT_EQ(result.core_types[0].cpus, (std::vector<int>{4, 5}));
  EXPECT_EQ(result.core_types[0].discriminator, 1024);
  EXPECT_EQ(result.core_types[1].cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Detect, RaptorLakeUsesCpuidLeaf) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuidHybridLeaf);
  ASSERT_EQ(result.core_types.size(), 2u);
  EXPECT_EQ(result.core_types[0].label, "intel_core");
  EXPECT_EQ(result.core_types[0].cpus.size(), 16u);
  EXPECT_EQ(result.core_types[1].label, "intel_atom");
  EXPECT_EQ(result.core_types[1].cpus.size(), 8u);
}

TEST(Detect, RaptorLakeFallsBackToPmuCpusFilesWithoutCpuid) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost inner(&kernel);
  FilteredHost host(&inner);
  host.hide_cpuid = true;
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kPmuCpusFiles);
  ASSERT_EQ(result.core_types.size(), 2u);
  // Labels come from the PMU directory names.
  EXPECT_TRUE(result.core_types[0].label == "cpu_core" ||
              result.core_types[1].label == "cpu_core");
}

TEST(Detect, FallsBackToMaxFreqWhenPmuFilesAlsoHidden) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost inner(&kernel);
  FilteredHost host(&inner);
  host.hide_cpuid = true;
  host.hidden_substrings = {"/cpus"};  // hides the PMU cpus files
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kMaxFrequency);
  ASSERT_EQ(result.core_types.size(), 2u);
  EXPECT_EQ(result.core_types[0].discriminator, 5100000)
      << "P cores ranked first by max freq (kHz)";
}

TEST(Detect, HomogeneousFallbackWhenNothingDiscriminates) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost inner(&kernel);
  FilteredHost host(&inner);
  host.hide_cpuid = true;
  host.hidden_substrings = {"/cpus", "cpufreq"};
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kHomogeneousFallback);
  ASSERT_EQ(result.core_types.size(), 1u);
  EXPECT_EQ(result.core_types[0].cpus.size(), 24u);
}

TEST(Detect, HomogeneousXeonDetectsOneType) {
  SimKernel kernel(cpumodel::homogeneous_xeon());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_FALSE(result.hybrid());
  // Leaf 0x1A reads zero on this part, cpu_capacity absent, one PMU, one
  // frequency: falls all the way through.
  EXPECT_EQ(result.method, DetectionMethod::kHomogeneousFallback);
}

TEST(Detect, ThreeTypeMachineYieldsThreeGroups) {
  SimKernel kernel(cpumodel::arm_three_type());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuCapacity);
  ASSERT_EQ(result.core_types.size(), 3u);
  // The 250/512/1024-style split the paper mentions, ranked descending.
  EXPECT_EQ(result.core_types[0].discriminator, 1024);
  EXPECT_EQ(result.core_types[1].discriminator, 512);
  EXPECT_EQ(result.core_types[2].discriminator, 250);
}

TEST(Detect, IndividualStrategiesReportAbsentSources) {
  SimKernel intel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost intel_host(&intel);
  EXPECT_FALSE(detect_by_cpu_capacity(intel_host).has_value())
      << "x86 exposes no cpu_capacity";

  SimKernel arm(cpumodel::orangepi800_rk3399());
  pfm::SimHost arm_host(&arm);
  EXPECT_FALSE(detect_by_cpuid(arm_host).has_value()) << "no CPUID on ARM";
  EXPECT_TRUE(detect_by_cpu_capacity(arm_host).has_value());
  EXPECT_TRUE(detect_by_pmu_cpus(arm_host).has_value());
  EXPECT_TRUE(detect_by_max_freq(arm_host).has_value());
}

TEST(Detect, PmuCpusStrategyRequiresFullCoverage) {
  // Build a host where one PMU's cpus file is hidden: coverage is
  // incomplete and the strategy must refuse to answer.
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost inner(&kernel);
  FilteredHost host(&inner);
  host.hidden_substrings = {"cpu_atom/cpus"};
  EXPECT_FALSE(detect_by_pmu_cpus(host).has_value());
}

// --- CPUID + PMU-topology refinement (the LP-E ambiguity) -------------------

TEST(Detect, MeteorLakeRefinesCpuidGroupsAlongPmuBoundaries) {
  // CPUID leaf 0x1A reads 0x20 on both the E-cores and the LP-E island,
  // so the leaf alone finds two groups; the kernel exports three core
  // PMUs whose cpu lists nest inside them, and the refinement rung
  // splits the atom group accordingly.
  SimKernel kernel(cpumodel::meteor_lake_like());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuidPmuRefined);
  EXPECT_EQ(to_string(result.method), "cpuid_leaf_1a+pmu_cpus");
  ASSERT_EQ(result.core_types.size(), 3u);
  EXPECT_EQ(result.core_types[0].label, "intel_core");
  EXPECT_EQ(result.core_types[0].cpus.size(), 12u);
  EXPECT_EQ(result.core_types[1].label, "intel_atom");
  EXPECT_EQ(result.core_types[1].cpus.size(), 8u);
  EXPECT_EQ(result.core_types[2].label, "intel_lowpower");
  EXPECT_EQ(result.core_types[2].cpus, (std::vector<int>{20, 21}));
  // Refined groups keep the CPUID discriminator of their parent: both
  // atom-ish groups carry the shared core-kind byte.
  EXPECT_EQ(result.core_types[1].discriminator,
            result.core_types[2].discriminator);
}

TEST(Detect, MeteorLakeWithoutPmuCpusFallsBackToTwoCpuidGroups) {
  // Hiding the PMU cpus files removes the refinement data; the ladder
  // degrades to the bare CPUID answer, where E and LP-E are one group —
  // exactly the ambiguity the refinement exists to resolve.
  SimKernel kernel(cpumodel::meteor_lake_like());
  pfm::SimHost inner(&kernel);
  FilteredHost host(&inner);
  host.hidden_substrings = {"/cpus"};
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuidHybridLeaf);
  ASSERT_EQ(result.core_types.size(), 2u);
  EXPECT_EQ(result.core_types[0].label, "intel_core");
  EXPECT_EQ(result.core_types[1].label, "intel_atom");
  EXPECT_EQ(result.core_types[1].cpus.size(), 10u)
      << "E and LP-E cpus collapse into one CPUID group";
}

TEST(Detect, RaptorLakeDoesNotClaimRefinementWithoutExtraPmus) {
  // Two CPUID groups and two core PMUs: the refinement rung must stay
  // silent so the reported method (and every golden report) is the
  // plain CPUID leaf.
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost host(&kernel);
  const auto cpuid = detect_by_cpuid(host);
  ASSERT_TRUE(cpuid.has_value());
  EXPECT_FALSE(refine_cpuid_with_pmu_topology(host, *cpuid).has_value());
  EXPECT_EQ(detect_core_types(host).method,
            DetectionMethod::kCpuidHybridLeaf);
}

TEST(Detect, DynamiqUsesCpuCapacityForThreeArmTypes) {
  SimKernel kernel(cpumodel::arm_dynamiq());
  pfm::SimHost host(&kernel);
  const DetectionResult result = detect_core_types(host);
  EXPECT_EQ(result.method, DetectionMethod::kCpuCapacity);
  ASSERT_EQ(result.core_types.size(), 3u);
  EXPECT_EQ(result.core_types[0].discriminator, 1024);
  EXPECT_EQ(result.core_types[0].cpus, (std::vector<int>{7}));
  EXPECT_EQ(result.core_types[1].discriminator, 744);
  EXPECT_EQ(result.core_types[2].discriminator, 286);
  EXPECT_EQ(result.core_types[2].cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Detect, UnknownCoreKindGetsDeterministicVendorLabel) {
  EXPECT_EQ(core_kind_label("intel", 0x40), "intel_core");
  EXPECT_EQ(core_kind_label("intel", 0x20), "intel_atom");
  EXPECT_EQ(core_kind_label("intel", 0x33), "intel_kind_0x33");
  EXPECT_EQ(core_kind_label("amd", 0x40), "amd_kind_0x40")
      << "the 0x40/0x20 table entries are Intel-specific";
  EXPECT_EQ(pmu_sysfs_label("cpu_core"), "intel_core");
  EXPECT_EQ(pmu_sysfs_label("cpu_atom"), "intel_atom");
  EXPECT_EQ(pmu_sysfs_label("cpu_lowpower"), "intel_lowpower");
  EXPECT_EQ(pmu_sysfs_label("cpu_mystery"), "cpu_mystery");
}

class HardwareInfoTest
    : public ::testing::TestWithParam<cpumodel::MachineSpec> {};

TEST_P(HardwareInfoTest, ReportsCpuCountHybridFlagAndModel) {
  SimKernel kernel(GetParam());
  pfm::SimHost host(&kernel);
  const auto info = get_hardware_info(host);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->total_cpus, GetParam().num_cpus());
  EXPECT_EQ(info->hybrid, GetParam().is_hybrid());
  EXPECT_FALSE(info->model_string.empty());
}

INSTANTIATE_TEST_SUITE_P(AllMachines, HardwareInfoTest,
                         ::testing::Values(cpumodel::raptor_lake_i7_13700(),
                                           cpumodel::orangepi800_rk3399(),
                                           cpumodel::homogeneous_xeon(),
                                           cpumodel::arm_three_type(),
                                           cpumodel::meteor_lake_like(),
                                           cpumodel::arm_dynamiq()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace hetpapi::papi
