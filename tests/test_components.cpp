// The component layer: registry rules, per-component locks, the caps
// gates, mixed-component EventSets, and the sysinfo software component
// on both simulated machine families (§IV-E's framework/components
// split).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/component.hpp"
#include "papi/components/sysinfo.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::ComponentEnv;
using papi::ComponentRegistry;
using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using papi::SysinfoComponent;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

/// Scope guard for tests with a local backend: when it runs (after the
/// Library is destroyed), zero perf events may still be open.
struct FdLeakGuard {
  explicit FdLeakGuard(const SimBackend* b) : guarded(b) {}
  ~FdLeakGuard() {
    EXPECT_EQ(guarded->open_fd_count(), 0u) << "leaked perf fds at teardown";
  }
  const SimBackend* guarded;
};

TEST(ComponentRegistry, DuplicateRegistrationIsConflict) {
  ComponentRegistry registry;
  ASSERT_TRUE(registry
                  .register_component(
                      std::make_unique<SysinfoComponent>(ComponentEnv{}))
                  .is_ok());
  const Status dup = registry.register_component(
      std::make_unique<SysinfoComponent>(ComponentEnv{}));
  ASSERT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), StatusCode::kConflict);
  EXPECT_NE(dup.message().find("already registered"), std::string::npos);
}

TEST(ComponentRegistry, FindUnregisteredReturnsNull) {
  ComponentRegistry registry;
  EXPECT_EQ(registry.find("sysinfo"), nullptr);
  ASSERT_TRUE(registry
                  .register_component(
                      std::make_unique<SysinfoComponent>(ComponentEnv{}))
                  .is_ok());
  EXPECT_NE(registry.find("sysinfo"), nullptr);
  EXPECT_EQ(registry.find("no_such_component"), nullptr);
}

class ComponentTest : public ::testing::Test {
 protected:
  ComponentTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {}

  std::unique_ptr<Library> make_library(LibraryConfig config = {}) {
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value()) << lib.status().to_string();
    return std::move(*lib);
  }

  // Runs after the body (and with it every Library) is gone: whatever
  // the test did, no perf event may outlive its owners.
  void TearDown() override {
    EXPECT_EQ(backend_.open_fd_count(), 0u) << "leaked perf fds at teardown";
  }

  Tid spawn_pinned(std::uint64_t instructions, int cpu) {
    PhaseSpec phase;
    phase.flops_per_instr = 0.5;
    const Tid tid = kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions),
        CpuSet::of({cpu}));
    backend_.set_default_target(tid);
    return tid;
  }

  SimKernel kernel_;
  SimBackend backend_;
};

TEST_F(ComponentTest, BuiltinRegistryFoldsUncoreIntoPerfEvent) {
  const auto names = [](const Library& lib) {
    std::vector<std::string> out;
    for (const auto& component : lib.registry().components()) {
      out.emplace_back(component->name());
    }
    return out;
  };

  // §V-3, completed: the legacy exclusive uncore component is retired —
  // perf_event serves the uncore PMUs directly, so there is no
  // perf_event_uncore row and IMC events fold into ordinary EventSets.
  auto lib = make_library();
  EXPECT_EQ(names(*lib),
            (std::vector<std::string>{"perf_event", "rapl", "sysinfo"}));
  EXPECT_EQ(lib->registry().find("perf_event_uncore"), nullptr);

  const pfm::ActivePmu* imc = lib->pfm().find_pmu("unc_imc_0");
  ASSERT_NE(imc, nullptr);
  EXPECT_EQ(lib->registry().component_for(*imc),
            lib->registry().find("perf_event"));
}

TEST_F(ComponentTest, PackageScopeLockSpansCpuAndThreadAttachment) {
  const Tid tid = spawn_pinned(10'000'000, 0);
  auto lib = make_library();

  // RAPL is package-scope: a cpu-attached EventSet and a thread-attached
  // one contend for the same component lock even though their targets
  // differ.
  auto on_cpu = lib->create_eventset();
  ASSERT_TRUE(on_cpu.has_value());
  ASSERT_TRUE(lib->attach_cpu(*on_cpu, 0).is_ok());
  ASSERT_TRUE(lib->add_event(*on_cpu, "rapl::RAPL_ENERGY_PKG").is_ok());
  ASSERT_TRUE(lib->start(*on_cpu).is_ok());

  auto on_thread = lib->create_eventset();
  ASSERT_TRUE(on_thread.has_value());
  ASSERT_TRUE(lib->attach(*on_thread, tid).is_ok());
  ASSERT_TRUE(lib->add_event(*on_thread, "rapl::RAPL_ENERGY_PKG").is_ok());
  const Status conflict = lib->start(*on_thread);
  ASSERT_FALSE(conflict.is_ok());
  EXPECT_EQ(conflict.code(), StatusCode::kConflict);
  EXPECT_NE(conflict.message().find("already has a running EventSet"),
            std::string::npos);

  // Releasing the lock frees the other set.
  ASSERT_TRUE(lib->stop(*on_cpu).has_value());
  EXPECT_TRUE(lib->start(*on_thread).is_ok());
  EXPECT_TRUE(lib->stop(*on_thread).has_value());
}

TEST_F(ComponentTest, MixedComponentEventSetStartsStopsAndReads) {
  // Enough work that /proc/stat's 10 ms jiffy granularity registers it.
  const Tid tid = spawn_pinned(2'000'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE(lib->attach(*set, tid).is_ok());
  // Three components in one EventSet, interleaved with a second core
  // event so component dispatch must preserve add order in the values.
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "rapl::RAPL_ENERGY_PKG").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "sysinfo::SYS_CPU_TIME_MS").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());

  // Only the perf-backed components hold kernel groups; sysinfo charges
  // no per-call overhead.
  auto groups = lib->eventset_group_count(*set);
  ASSERT_TRUE(groups.has_value());
  EXPECT_EQ(*groups, 2);

  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::milliseconds(200));
  auto mid = lib->read(*set);
  ASSERT_TRUE(mid.has_value()) << mid.status().to_string();
  ASSERT_EQ(mid->size(), 4u);

  kernel_.run_for(std::chrono::milliseconds(200));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();
  ASSERT_EQ(values->size(), 4u);
  EXPECT_GT((*values)[0], 0) << "instructions retired";
  EXPECT_GT((*values)[1], 0) << "package energy";
  EXPECT_GT((*values)[2], 0) << "busy cpu time (ms)";
  EXPECT_GT((*values)[3], 0) << "core cycles";
  EXPECT_GE((*values)[0], (*mid)[0]) << "counters are monotonic";

  // Stopped counters are frozen: more simulated time changes nothing.
  kernel_.run_for(std::chrono::milliseconds(100));
  auto after = lib->read(*set);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *values);
}

TEST_F(ComponentTest, SysinfoWorksWithoutAttachment) {
  spawn_pinned(100'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(set.has_value());
  // Package-scope software readings need no target thread or cpu.
  ASSERT_TRUE(lib->add_event(*set, "sysinfo::SYS_CTX_SWITCHES").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "sysinfo::PKG_TEMP_MC").is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::milliseconds(200));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value()) << values.status().to_string();
  EXPECT_GE((*values)[0], 0) << "context switches are a delta";
  EXPECT_GT((*values)[1], 20'000)
      << "package temperature gauge (millidegrees)";
}

TEST_F(ComponentTest, SysinfoRejectsMultiplexAndRaplRejectsOverflow) {
  const Tid tid = spawn_pinned(1'000'000, 0);
  auto lib = make_library();

  auto sys_set = lib->create_eventset();
  ASSERT_TRUE(sys_set.has_value());
  ASSERT_TRUE(lib->add_event(*sys_set, "sysinfo::SYS_CTX_SWITCHES").is_ok());
  const Status mux = lib->set_multiplex(*sys_set);
  ASSERT_FALSE(mux.is_ok());
  EXPECT_EQ(mux.code(), StatusCode::kNotSupported);
  EXPECT_NE(mux.message().find("does not support multiplexing"),
            std::string::npos);

  auto rapl_set = lib->create_eventset();
  ASSERT_TRUE(rapl_set.has_value());
  ASSERT_TRUE(lib->attach(*rapl_set, tid).is_ok());
  ASSERT_TRUE(lib->add_event(*rapl_set, "rapl::RAPL_ENERGY_PKG").is_ok());
  const Status overflow = lib->set_overflow(
      *rapl_set, 0, 1000, [](const papi::OverflowEvent&) {});
  ASSERT_FALSE(overflow.is_ok());
  EXPECT_EQ(overflow.code(), StatusCode::kNotSupported);
  EXPECT_NE(overflow.message().find("does not support overflow sampling"),
            std::string::npos);
}

// Sysinfo readings on a given machine model are a pure function of the
// simulated schedule: two identical runs agree bit-for-bit, and the cpu
// time matches the busy time the kernel actually scheduled.
class SysinfoMachineTest
    : public ::testing::TestWithParam<cpumodel::MachineSpec (*)()> {};

TEST_P(SysinfoMachineTest, DeterministicAcrossIdenticalRuns) {
  const auto run_once = [&] {
    SimKernel kernel(GetParam()());
    SimBackend backend(&kernel);
    FdLeakGuard leak_guard(&backend);
    PhaseSpec phase;
    // Enough work that busy time clears /proc/stat's 10 ms jiffy
    // granularity even on the fastest simulated core.
    kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 1'000'000'000),
                 CpuSet::of({0}));
    auto lib = Library::init(&backend);
    EXPECT_TRUE(lib.has_value()) << lib.status().to_string();
    auto set = (*lib)->create_eventset();
    EXPECT_TRUE(set.has_value());
    EXPECT_TRUE(
        (*lib)->add_event(*set, "sysinfo::SYS_CTX_SWITCHES").is_ok());
    EXPECT_TRUE(
        (*lib)->add_event(*set, "sysinfo::SYS_CPU_TIME_MS").is_ok());
    EXPECT_TRUE((*lib)->add_event(*set, "sysinfo::PKG_TEMP_MC").is_ok());
    EXPECT_TRUE((*lib)->start(*set).is_ok());
    kernel.run_for(std::chrono::milliseconds(500));
    auto values = (*lib)->stop(*set);
    EXPECT_TRUE(values.has_value()) << values.status().to_string();
    return values.has_value() ? *values : std::vector<long long>{};
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first, second) << "sim readings must be deterministic";
  EXPECT_GE(first[0], 0) << "context switches";
  EXPECT_GT(first[1], 0) << "the pinned worker burned cpu time";
  EXPECT_LE(first[1], 510) << "cannot exceed wall time on one core";
  EXPECT_GT(first[2], 20'000) << "package/SoC temperature in millidegrees";
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, SysinfoMachineTest,
                         ::testing::Values(&cpumodel::raptor_lake_i7_13700,
                                           &cpumodel::orangepi800_rk3399),
                         [](const auto& param) {
                           return param.index == 0 ? "intel" : "arm";
                         });

}  // namespace
}  // namespace hetpapi
