// The extended machine catalog: Alder Lake (same PMU tables as Raptor
// Lake), and the paper's §I-A server outlook — Sierra Forest (all
// E-core) and Granite Rapids (all P-core) — which must behave as
// perfectly ordinary homogeneous machines despite their core flavours.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(AlderLake, SharesRaptorLakePmuTables) {
  // "Raptor Lake systems have the same underlying PMU as Alder Lake":
  // the adl_glc/adl_grt tables must bind on both machines.
  SimKernel kernel(cpumodel::alder_lake_i9_12900k());
  pfm::SimHost host(&kernel);
  pfm::PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok());
  EXPECT_NE(lib.find_pmu("adl_glc"), nullptr);
  EXPECT_NE(lib.find_pmu("adl_grt"), nullptr);
}

TEST(AlderLake, HigherPowerEnvelopeSustainsHigherFrequencies) {
  // The 12900K's 125 W PL1 sustains more all-P frequency than the
  // 13700's 65 W budget.
  const auto run_all_p = [](const cpumodel::MachineSpec& machine) {
    SimKernel kernel(machine);
    PhaseSpec phase;
    phase.activity = 1.0;
    for (int cpu = 0; cpu < 16; cpu += 2) {
      kernel.spawn(
          std::make_shared<FixedWorkProgram>(phase, 2'000'000'000'000ULL),
          CpuSet::of({cpu}));
    }
    kernel.run_for(std::chrono::seconds(90));  // past the PL2 burst
    return kernel.governor().frequency(0).value;
  };
  const double adl = run_all_p(cpumodel::alder_lake_i9_12900k());
  const double rpl = run_all_p(cpumodel::raptor_lake_i7_13700());
  EXPECT_GT(adl, rpl + 300.0) << "125 W vs 65 W sustained budgets";
}

class ServerPresetTest
    : public ::testing::TestWithParam<cpumodel::MachineSpec> {};

TEST_P(ServerPresetTest, HomogeneousServersAreNotHybrid) {
  SimKernel kernel(GetParam());
  pfm::SimHost host(&kernel);
  const auto info = papi::get_hardware_info(host);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->hybrid)
      << "single-core-type servers must not be reported hybrid";
  EXPECT_EQ(info->detection.method,
            papi::DetectionMethod::kHomogeneousFallback);
}

TEST_P(ServerPresetTest, MeasurementWorksThroughTheTraditionalPath) {
  SimKernel kernel(GetParam());
  papi::SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 25'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  auto info = (*lib)->eventset_info(*set);
  EXPECT_EQ((*info)[0].native_names.size(), 1u) << "no derived sum needed";
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GE((*values)[0], 25'000'000);
}

INSTANTIATE_TEST_SUITE_P(
    Servers, ServerPresetTest,
    ::testing::Values(cpumodel::sierra_forest_e_only(),
                      cpumodel::granite_rapids_p_only()),
    [](const auto& param_info) { return param_info.param.name; });

TEST(ServerPresets, ModelKeyedTablesBindTheRightFlavour) {
  {
    SimKernel kernel(cpumodel::sierra_forest_e_only());
    pfm::SimHost host(&kernel);
    pfm::PfmLibrary lib;
    ASSERT_TRUE(lib.initialize(host).is_ok());
    EXPECT_NE(lib.find_pmu("srf"), nullptr);
    EXPECT_EQ(lib.find_pmu("gnr"), nullptr);
    EXPECT_EQ(lib.find_pmu("skx"), nullptr);
    // E-core flavour: no topdown, but the Crestmont stall event exists.
    EXPECT_FALSE(lib.encode("srf::TOPDOWN:SLOTS").has_value());
    EXPECT_TRUE(lib.encode("srf::MEM_BOUND_STALLS").has_value());
  }
  {
    SimKernel kernel(cpumodel::granite_rapids_p_only());
    pfm::SimHost host(&kernel);
    pfm::PfmLibrary lib;
    ASSERT_TRUE(lib.initialize(host).is_ok());
    EXPECT_NE(lib.find_pmu("gnr"), nullptr);
    EXPECT_EQ(lib.find_pmu("srf"), nullptr);
    // P-core flavour: topdown exists on the server part.
    EXPECT_TRUE(lib.encode("gnr::TOPDOWN:SLOTS").has_value());
  }
}

TEST(ServerPresets, GraniteRapidsSmtThreadsShareCorePower) {
  // 16 cores x 2 threads: loading both threads of one core must cost
  // much less than loading two separate cores.
  const auto power_with = [](std::vector<int> cpus) {
    SimKernel kernel(cpumodel::granite_rapids_p_only());
    PhaseSpec phase;
    phase.activity = 1.0;
    for (int cpu : cpus) {
      kernel.spawn(
          std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
          CpuSet::of({cpu}));
    }
    kernel.run_for(std::chrono::seconds(1));
    return kernel.governor().package_power().value;
  };
  const double same_core = power_with({0, 1});
  const double two_cores = power_with({0, 2});
  EXPECT_LT(same_core, two_cores - 3.0);
}

TEST(MachinePresets, AllNewPresetsValidate) {
  EXPECT_TRUE(cpumodel::alder_lake_i9_12900k().validate().is_ok());
  EXPECT_TRUE(cpumodel::sierra_forest_e_only().validate().is_ok());
  EXPECT_TRUE(cpumodel::granite_rapids_p_only().validate().is_ok());
  EXPECT_TRUE(cpumodel::granite_rapids_p_only(64).validate().is_ok());
}

}  // namespace
}  // namespace hetpapi
