// Failure injection: resource exhaustion and corrupt introspection data.
// The library must fail with precise errors and stay consistent — no
// leaked kernel events, no half-added EventSets, no detection crashes on
// garbage sysfs contents.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/detect.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

/// Host that rewrites the contents of chosen paths (corruption, not
/// absence).
class CorruptingHost final : public pfm::Host {
 public:
  explicit CorruptingHost(const pfm::Host* inner) : inner_(inner) {}
  std::map<std::string, std::string> overrides;

  Expected<std::string> read_file(std::string_view path) const override {
    for (const auto& [fragment, replacement] : overrides) {
      if (path.find(fragment) != std::string_view::npos) return replacement;
    }
    return inner_->read_file(path);
  }
  Expected<std::vector<std::string>> list_dir(
      std::string_view path) const override {
    return inner_->list_dir(path);
  }
  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int cpu) const override {
    return inner_->cpuid_core_kind(cpu);
  }
  int num_cpus() const override { return inner_->num_cpus(); }

 private:
  const pfm::Host* inner_;
};

TEST(FailureInjection, FdExhaustionSurfacesAsNoMemoryAndRollsBack) {
  SimKernel::Config config;
  config.perf.max_open_fds = 3;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 100'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  LibraryConfig lib_config;
  lib_config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, lib_config);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();

  // Two P-core events fit (leader + sibling = 2 fds)...
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(
      (*lib)->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  // ...a derived preset then needs two more fds and must fail cleanly.
  const Status fail = (*lib)->add_event(*set, "PAPI_BR_INS");
  ASSERT_FALSE(fail.is_ok());
  EXPECT_EQ(fail.code(), StatusCode::kNoMemory);

  // The set is still usable with its surviving events.
  auto info = (*lib)->eventset_info(*set);
  ASSERT_EQ(info->size(), 2u);
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ((*values)[0], 100'000'000);
}

TEST(FailureInjection, NoKernelEventLeaksAfterFailedAdds) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  const std::size_t baseline = kernel.perf().open_event_count();
  // Failed adds of every flavour must not change the open-event count.
  EXPECT_FALSE((*lib)->add_event(*set, "adl_glc::NO_SUCH").is_ok());
  EXPECT_FALSE((*lib)->add_event(*set, "nope::EVENT").is_ok());
  EXPECT_FALSE((*lib)->add_event(*set, "adl_grt::TOPDOWN:SLOTS").is_ok());
  EXPECT_EQ(kernel.perf().open_event_count(), baseline);
  ASSERT_TRUE((*lib)->destroy_eventset(*set).is_ok());
  EXPECT_EQ(kernel.perf().open_event_count(), 0u);
}

TEST(FailureInjection, EventSetCapacityIsEnforced) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  auto set = (*lib)->create_eventset();
  // 64-slot static array; each preset consumes two (P + E).
  Status last = Status::ok();
  int added = 0;
  for (int i = 0; i < 40 && last.is_ok(); ++i) {
    last = (*lib)->add_event(*set, "PAPI_TOT_INS");
    if (last.is_ok()) ++added;
  }
  EXPECT_EQ(added, 32) << "64 native slots / 2 per derived preset";
  EXPECT_EQ(last.code(), StatusCode::kNoMemory);
}

TEST(FailureInjection, GarbageCpuCapacityFallsThroughTheLadder) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  pfm::SimHost inner(&kernel);
  CorruptingHost host(&inner);
  host.overrides["cpu_capacity"] = "banana\n";
  const papi::DetectionResult result = papi::detect_core_types(host);
  // cpu_capacity is unparseable -> strategy reports nothing -> the PMU
  // cpus files still identify both clusters.
  EXPECT_EQ(result.method, papi::DetectionMethod::kPmuCpusFiles);
  EXPECT_EQ(result.core_types.size(), 2u);
}

TEST(FailureInjection, GarbagePmuTypeFileIsSkippedByTheScan) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  pfm::SimHost inner(&kernel);
  CorruptingHost host(&inner);
  host.overrides["cpu_atom/type"] = "not-a-number\n";
  pfm::PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok())
      << "one broken PMU must not abort the scan";
  EXPECT_NE(lib.find_pmu("adl_glc"), nullptr);
  EXPECT_EQ(lib.find_pmu("adl_grt"), nullptr)
      << "the PMU with the corrupt type file is skipped";
}

TEST(FailureInjection, GarbageMidrLeavesArmPmuUnbound) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  pfm::SimHost inner(&kernel);
  CorruptingHost host(&inner);
  host.overrides["cpu4/regs/identification/midr_el1"] = "0xdeadbeef\n";
  pfm::PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok());
  EXPECT_NE(lib.find_pmu("arm_a53"), nullptr);
  EXPECT_EQ(lib.find_pmu("arm_a72"), nullptr)
      << "unknown part number: no table binds";
}

TEST(FailureInjection, LibraryInitFailsWhenSysfsIsGone) {
  // A host where /sys/devices cannot be listed at all.
  class DeadHost final : public pfm::Host {
   public:
    Expected<std::string> read_file(std::string_view) const override {
      return make_error(StatusCode::kNotFound, "dead");
    }
    Expected<std::vector<std::string>> list_dir(
        std::string_view) const override {
      return make_error(StatusCode::kNotFound, "dead");
    }
    Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int) const override {
      return make_error(StatusCode::kNotSupported, "dead");
    }
    int num_cpus() const override { return 4; }
  };

  class DeadBackend final : public papi::Backend {
   public:
    Expected<int> perf_event_open(const papi::PerfEventAttr&, papi::Tid, int,
                                  int, std::uint64_t) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    Status perf_ioctl(int, papi::PerfIoctl, std::uint32_t) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    Expected<papi::PerfValue> perf_read(int) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    Expected<std::vector<papi::PerfValue>> perf_read_group(int) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    Expected<std::uint64_t> perf_rdpmc(int) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    Status perf_close(int) override {
      return make_error(StatusCode::kSystem, "dead");
    }
    const pfm::Host& host() const override { return host_; }
    papi::Tid default_target() const override { return 0; }

   private:
    DeadHost host_;
  };

  DeadBackend backend;
  auto lib = Library::init(&backend);
  ASSERT_FALSE(lib.has_value());
  EXPECT_EQ(lib.status().code(), StatusCode::kComponent);
}

}  // namespace
}  // namespace hetpapi
