// String utilities, including the cpulist parser the detection stack
// relies on (sysfs "cpus"/"cpumask" files).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "base/strings.hpp"
#include "base/table.hpp"

namespace hetpapi {
namespace {

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Trim, RemovesAsciiWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x \t\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("INST_RETIRED", "inst_retired"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(ParseInt, DecimalHexAndFailures) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" 42\n"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("0x1A"), 0x1A);
  EXPECT_EQ(parse_int("0X00410fd082"), 0x410fd082);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
}

TEST(ParseDouble, BasicAndFailures) {
  EXPECT_DOUBLE_EQ(*parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*parse_double(" -0.25 "), -0.25);
  EXPECT_FALSE(parse_double("x").has_value());
}

TEST(CpuList, ParsesSinglesRangesAndMixes) {
  EXPECT_EQ(*parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(*parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(*parse_cpulist("0,2,4-6"), (std::vector<int>{0, 2, 4, 5, 6}));
  // The paper's mon_hpl.py core list.
  EXPECT_EQ(parse_cpulist("0,2,4,6,8,10,12,14,16-23")->size(), 16u);
}

TEST(CpuList, SortsAndDeduplicates) {
  EXPECT_EQ(*parse_cpulist("3,1,2,2"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(*parse_cpulist("2-4,3-5"), (std::vector<int>{2, 3, 4, 5}));
}

TEST(CpuList, RejectsMalformedInput) {
  EXPECT_FALSE(parse_cpulist("a").has_value());
  EXPECT_FALSE(parse_cpulist("3-1").has_value());
  EXPECT_FALSE(parse_cpulist("-1").has_value());
  EXPECT_FALSE(parse_cpulist("1,,x").has_value());
}

TEST(CpuList, EmptyStringIsEmptyList) {
  ASSERT_TRUE(parse_cpulist("").has_value());
  EXPECT_TRUE(parse_cpulist("")->empty());
}

TEST(CpuList, FormatProducesCanonicalRanges) {
  EXPECT_EQ(format_cpulist({0, 1, 2, 3}), "0-3");
  EXPECT_EQ(format_cpulist({0, 2, 4}), "0,2,4");
  EXPECT_EQ(format_cpulist({5, 0, 1, 2}), "0-2,5");
  EXPECT_EQ(format_cpulist({}), "");
}

// Property: parse(format(x)) == x for random cpu sets.
TEST(CpuList, RoundTripProperty) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> cpus;
    for (int cpu = 0; cpu < 64; ++cpu) {
      if (rng.uniform() < 0.3) cpus.push_back(cpu);
    }
    const std::string formatted = format_cpulist(cpus);
    const auto parsed = parse_cpulist(formatted);
    ASSERT_TRUE(parsed.has_value()) << formatted;
    EXPECT_EQ(*parsed, cpus) << formatted;
  }
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("empty"), "empty");
}

TEST(TextTable, RendersAlignedCells) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("22222 |"), std::string::npos);
  EXPECT_NE(out.find("    1 |"), std::string::npos)
      << "numeric cells right-align";
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace hetpapi
