// The measurement library: multi-PMU EventSets (§IV-E), default PMUs
// (§IV-D), derived presets (§V-2), component rules, multiplexing, and
// the legacy baselines for each.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::PresetPolicy;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

class LibraryTest : public ::testing::Test {
 protected:
  LibraryTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {}

  std::unique_ptr<Library> make_library(LibraryConfig config = {}) {
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value()) << lib.status().to_string();
    return std::move(*lib);
  }

  Tid spawn_pinned(std::uint64_t instructions, int cpu) {
    PhaseSpec phase;
    phase.llc_refs_per_kinstr = 6.0;  // some memory traffic for IMC tests
    phase.llc_miss_ratio = 0.4;
    phase.flops_per_instr = 0.5;  // some FP work for the flop counters
    const Tid tid = kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions),
        CpuSet::of({cpu}));
    backend_.set_default_target(tid);
    return tid;
  }

  SimKernel kernel_;
  SimBackend backend_;
};

TEST_F(LibraryTest, InitDetectsHybridHardware) {
  auto lib = make_library();
  EXPECT_TRUE(lib->hardware_info().hybrid);
  EXPECT_EQ(lib->hardware_info().total_cpus, 24);
  EXPECT_NE(lib->pfm().find_pmu("adl_glc"), nullptr);
  EXPECT_NE(lib->pfm().find_pmu("adl_grt"), nullptr);
  EXPECT_NE(lib->pfm().find_pmu("rapl"), nullptr);
}

TEST_F(LibraryTest, LegacyEventSetRejectsSecondPmu) {
  spawn_pinned(1'000'000, 0);
  LibraryConfig config;
  config.hybrid_support = false;
  auto lib = make_library(config);
  auto set = lib->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  const Status conflict = lib->add_event(*set, "adl_grt::INST_RETIRED:ANY");
  ASSERT_FALSE(conflict.is_ok());
  EXPECT_EQ(conflict.code(), StatusCode::kConflict);
}

TEST_F(LibraryTest, LegacyEventSetRejectsRaplWithCpuEvents) {
  spawn_pinned(1'000'000, 0);
  LibraryConfig config;
  config.hybrid_support = false;
  auto lib = make_library(config);
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  const Status conflict = lib->add_event(*set, "rapl::RAPL_ENERGY_PKG");
  EXPECT_EQ(conflict.code(), StatusCode::kConflict);
}

TEST_F(LibraryTest, HybridEventSetSplitsIntoGroupPerPmu) {
  spawn_pinned(1'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(set.has_value());
  // The paper's canonical example (§IV-E).
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_grt::CPU_CLK_UNHALTED:THREAD").is_ok());
  auto groups = lib->eventset_group_count(*set);
  ASSERT_TRUE(groups.has_value());
  EXPECT_EQ(*groups, 2) << "one perf group per PMU type";
}

TEST_F(LibraryTest, UnprefixedEventResolvesOnDefaultPCorePmu) {
  spawn_pinned(1'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "INST_RETIRED:ANY").is_ok());
  auto info = lib->eventset_info(*set);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->size(), 1u);
  ASSERT_EQ((*info)[0].native_names.size(), 1u);
  EXPECT_EQ((*info)[0].native_names[0], "adl_glc::INST_RETIRED:ANY")
      << "P core is the hard-coded default (§IV-D)";
}

TEST_F(LibraryTest, PresetDerivedSumCoversBothPmus) {
  spawn_pinned(1'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  auto info = lib->eventset_info(*set);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->size(), 1u);
  EXPECT_TRUE((*info)[0].is_preset);
  ASSERT_EQ((*info)[0].native_names.size(), 2u);
  EXPECT_EQ((*info)[0].native_names[0], "adl_glc::INST_RETIRED:ANY");
  EXPECT_EQ((*info)[0].native_names[1], "adl_grt::INST_RETIRED:ANY");
}

TEST_F(LibraryTest, PresetPolicyErrorOnHybridFails) {
  spawn_pinned(1'000'000, 0);
  LibraryConfig config;
  config.preset_policy = PresetPolicy::kErrorOnHybrid;
  auto lib = make_library(config);
  auto set = lib->create_eventset();
  const Status status = lib->add_event(*set, "PAPI_TOT_INS");
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kNotPreset);
}

TEST_F(LibraryTest, PresetPolicyDefaultPmuOnlyUndercountsMigratedWork) {
  // A thread pinned to an E-core measured with the default-PMU-only
  // policy reads ~zero — the pre-patch failure mode the paper leads
  // with ("you might get 0, 1 million, or something in between").
  const Tid tid = spawn_pinned(2'000'000, 20);  // E-core cpu
  LibraryConfig config;
  config.preset_policy = PresetPolicy::kDefaultPmuOnly;
  auto lib = make_library(config);
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->attach(*set, tid).is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ((*values)[0], 0) << "P-core-only preset misses E-core work";
}

TEST_F(LibraryTest, DerivedPresetSumsAcrossCoreTypes) {
  const Tid tid = spawn_pinned(10'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->attach(*set, tid).is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  const auto* truth = kernel_.ground_truth(tid);
  const auto total = static_cast<long long>(truth->total().instructions);
  // The preset includes the injected measurement overhead executed
  // before the final stop; allow that margin.
  EXPECT_GE((*values)[0], 10'000'000);
  EXPECT_LE((*values)[0], total);
}

TEST_F(LibraryTest, StartStopStateMachineErrors) {
  spawn_pinned(100'000'000'000ULL, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  EXPECT_EQ(lib->start(*set).code(), StatusCode::kInvalidArgument)
      << "empty EventSet cannot start";
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_CYC").is_ok());
  EXPECT_EQ(lib->stop(*set).status().code(), StatusCode::kNotRunning);
  ASSERT_TRUE(lib->start(*set).is_ok());
  EXPECT_EQ(lib->start(*set).code(), StatusCode::kAlreadyRunning);
  EXPECT_EQ(lib->add_event(*set, "PAPI_TOT_INS").code(),
            StatusCode::kAlreadyRunning);
  EXPECT_EQ(lib->destroy_eventset(*set).code(), StatusCode::kAlreadyRunning);
  ASSERT_TRUE(lib->stop(*set).has_value());
  EXPECT_TRUE(lib->destroy_eventset(*set).is_ok());
  EXPECT_EQ(lib->read(*set).status().code(), StatusCode::kNoEventSet);
}

TEST_F(LibraryTest, OneRunningEventSetPerComponent) {
  spawn_pinned(1'000'000'000, 0);
  auto lib = make_library();
  auto a = lib->create_eventset();
  auto b = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*a, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->add_event(*b, "PAPI_TOT_CYC").is_ok());
  ASSERT_TRUE(lib->start(*a).is_ok());
  const Status second = lib->start(*b);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.code(), StatusCode::kConflict)
      << "the two-EventSet workaround must fail (§IV-E)";
  // A RAPL EventSet uses a different component and may run concurrently.
  auto rapl = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*rapl, "rapl::RAPL_ENERGY_PKG").is_ok());
  EXPECT_TRUE(lib->start(*rapl).is_ok()) << "separate component is free";
  ASSERT_TRUE(lib->stop(*a).has_value());
  EXPECT_TRUE(lib->start(*b).is_ok()) << "component freed after stop";
}

TEST_F(LibraryTest, RaplEventSetMeasuresEnergy) {
  spawn_pinned(2'000'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "rapl::RAPL_ENERGY_PKG").is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::seconds(2));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GT((*values)[0], 10'000'000) << "at least ~10 J over 2 s, in uJ";
}

TEST_F(LibraryTest, UnifiedUncoreJoinsCombinedEventSet) {
  spawn_pinned(1'000'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "unc_imc_0::UNC_M_CAS_COUNT:RD").is_ok())
      << "§V-3: uncore events join ordinary EventSets";
  auto groups = lib->eventset_group_count(*set);
  EXPECT_EQ(*groups, 3);  // adl_glc + adl_grt + imc
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::seconds(1));
  auto values = lib->read(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GT((*values)[1], 0) << "memory traffic observed";
}

TEST_F(LibraryTest, MultiplexedEventSetScalesEstimates) {
  const Tid tid = spawn_pinned(30'000'000'000ULL, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->attach(*set, tid).is_ok());
  // 12 GP-consuming P-core events vs 8 GP counters.
  const char* names[] = {
      "adl_glc::LONGEST_LAT_CACHE:REFERENCE",
      "adl_glc::LONGEST_LAT_CACHE:MISS",
      "adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
      "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
      "adl_glc::RESOURCE_STALLS",
      "adl_glc::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
  };
  for (const char* name : names) {
    ASSERT_TRUE(lib->add_event(*set, name).is_ok()) << name;
  }
  for (const char* name : names) {
    ASSERT_TRUE(lib->add_event(*set, name).is_ok()) << name;
  }
  ASSERT_TRUE(lib->set_multiplex(*set).is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::seconds(3));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 12u);
  // Duplicate events must agree within multiplexing tolerance.
  for (std::size_t i = 0; i < 6; ++i) {
    const double a = static_cast<double>((*values)[i]);
    const double b = static_cast<double>((*values)[i + 6]);
    EXPECT_GT(a, 0.0) << names[i];
    EXPECT_NEAR(a, b, 0.15 * a + 1000.0) << names[i];
  }
}

TEST_F(LibraryTest, AttachReopensOnNewTarget) {
  const Tid first = spawn_pinned(5'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->attach(*set, first).is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());

  PhaseSpec phase;
  const Tid second = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 7'000'000), CpuSet::of({2}));
  ASSERT_TRUE(lib->attach(*set, second).is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  const auto* truth = kernel_.ground_truth(second);
  EXPECT_GE((*values)[0], 7'000'000);
  EXPECT_LE((*values)[0],
            static_cast<long long>(truth->total().instructions));
}

TEST_F(LibraryTest, DestroyClosesAllKernelEvents) {
  spawn_pinned(1'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_CYC").is_ok());
  EXPECT_GT(kernel_.perf().open_event_count(), 0u);
  ASSERT_TRUE(lib->destroy_eventset(*set).is_ok());
  EXPECT_EQ(kernel_.perf().open_event_count(), 0u);
}

TEST_F(LibraryTest, NativeEventListingsIncludeBothCorePmus) {
  auto lib = make_library();
  const auto names = lib->native_event_names();
  const auto contains = [&](std::string_view needle) {
    for (const std::string& name : names) {
      if (name == needle) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("adl_glc::INST_RETIRED:ANY"));
  EXPECT_TRUE(contains("adl_grt::INST_RETIRED:ANY"));
  EXPECT_TRUE(contains("adl_glc::TOPDOWN:SLOTS"));
  EXPECT_FALSE(contains("adl_grt::TOPDOWN:SLOTS"))
      << "topdown is P-core-only";
}

TEST_F(LibraryTest, AccumAddsAndResets) {
  const Tid tid = spawn_pinned(400'000'000, 0);
  LibraryConfig config;
  config.call_overhead_instructions = 0;
  auto lib = make_library(config);
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->attach(*set, tid).is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->start(*set).is_ok());

  std::vector<long long> accumulated(1, 0);
  for (int i = 0; i < 5; ++i) {
    kernel_.run_for(std::chrono::milliseconds(4));
    ASSERT_TRUE(lib->accum(*set, accumulated).is_ok());
  }
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto final_values = lib->stop(*set);
  ASSERT_TRUE(final_values.has_value());
  const auto total = accumulated[0] + (*final_values)[0];
  EXPECT_EQ(total, 400'000'000)
      << "accumulated chunks + remainder = whole workload";
}

TEST_F(LibraryTest, AccumValidatesArguments) {
  spawn_pinned(1'000'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  std::vector<long long> values(1, 0);
  EXPECT_EQ(lib->accum(*set, values).code(), StatusCode::kNotRunning);
  ASSERT_TRUE(lib->start(*set).is_ok());
  std::vector<long long> wrong_size(3, 0);
  EXPECT_EQ(lib->accum(*set, wrong_size).code(),
            StatusCode::kInvalidArgument);
  std::vector<long long> missing;
  EXPECT_EQ(lib->accum(99, missing).code(), StatusCode::kNoEventSet);
}

TEST_F(LibraryTest, StateTracksLifecycle) {
  spawn_pinned(1'000'000'000, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_CYC").is_ok());
  EXPECT_EQ(*lib->state(*set), Library::SetStatePublic::kStopped);
  ASSERT_TRUE(lib->start(*set).is_ok());
  EXPECT_EQ(*lib->state(*set), Library::SetStatePublic::kRunning);
  ASSERT_TRUE(lib->stop(*set).has_value());
  EXPECT_EQ(*lib->state(*set), Library::SetStatePublic::kStopped);
  EXPECT_EQ(lib->state(12345).status().code(), StatusCode::kNoEventSet);
}

TEST_F(LibraryTest, RemoveEventDropsSlotAndSurvivorsKeepCounting) {
  spawn_pinned(1'000'000'000'000ULL, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());

  // Removal requires a stopped set and an event that exists.
  ASSERT_TRUE(lib->start(*set).is_ok());
  EXPECT_EQ(lib->remove_event(*set, "adl_glc::INST_RETIRED:ANY").code(),
            StatusCode::kAlreadyRunning);
  kernel_.run_for(std::chrono::milliseconds(50));
  auto before = lib->stop(*set);
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(before->size(), 3u);
  EXPECT_EQ(lib->remove_event(*set, "PAPI_NO_SUCH_EVENT").code(),
            StatusCode::kNotFound);

  // Drop the middle event: survivors keep their relative order and the
  // set reopens transparently (name match is case-insensitive).
  ASSERT_TRUE(
      lib->remove_event(*set, "adl_glc::cpu_clk_unhalted:thread").is_ok());
  const auto info = lib->eventset_info(*set);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->size(), 2u);
  EXPECT_EQ((*info)[0].display_name, "adl_glc::INST_RETIRED:ANY");
  EXPECT_EQ((*info)[1].display_name, "adl_grt::INST_RETIRED:ANY");

  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::milliseconds(50));
  auto after = lib->stop(*set);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->size(), 2u);
  EXPECT_GT((*after)[0], 0) << "P-core survivor still counts";
  EXPECT_EQ((*after)[1], 0) << "E-core event: thread pinned to a P core";
}

TEST_F(LibraryTest, RemoveEventDropsAllConstituentsOfDerivedPreset) {
  spawn_pinned(1'000'000'000'000ULL, 0);
  auto lib = make_library();
  auto set = lib->create_eventset();
  // Each preset expands to one native per core-type PMU.
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib->add_event(*set, "PAPI_TOT_CYC").is_ok());
  ASSERT_TRUE(lib->remove_event(*set, "PAPI_TOT_INS").is_ok());

  const auto info = lib->eventset_info(*set);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->size(), 1u);
  EXPECT_EQ((*info)[0].display_name, "PAPI_TOT_CYC");

  ASSERT_TRUE(lib->start(*set).is_ok());
  kernel_.run_for(std::chrono::milliseconds(50));
  auto values = lib->stop(*set);
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), 1u);
  EXPECT_GT((*values)[0], 0);
}

TEST(LibraryReadPlanTest, CacheSurvivesAddAndRemove) {
  // The cached group-read fan-out must be invalidated whenever the
  // slot layout changes; a read after add/remove has to report one
  // correct value per surviving event, matching an uncached library.
  // Each run gets its own kernel so the deterministic sim replays the
  // exact same history for both configurations.
  const auto run_sequence = [](bool cache_read_plan) {
    SimKernel kernel(cpumodel::raptor_lake_i7_13700());
    SimBackend backend(&kernel);
    PhaseSpec phase;
    const Tid tid = kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
        CpuSet::of({0}));
    backend.set_default_target(tid);
    LibraryConfig config;
    config.cache_read_plan = cache_read_plan;
    auto created = Library::init(&backend, config);
    EXPECT_TRUE(created.has_value());
    auto lib = std::move(*created);
    auto set = lib->create_eventset();
    EXPECT_TRUE(lib->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
    EXPECT_TRUE(lib->start(*set).is_ok());
    kernel.run_for(std::chrono::milliseconds(20));
    auto first = lib->read(*set);  // builds (and maybe caches) the plan
    EXPECT_TRUE(first.has_value());
    EXPECT_EQ(first->size(), 1u);
    EXPECT_TRUE(lib->stop(*set).has_value());

    EXPECT_TRUE(
        lib->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
    EXPECT_TRUE(lib->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());
    EXPECT_TRUE(lib->start(*set).is_ok());
    kernel.run_for(std::chrono::milliseconds(20));
    auto grown = lib->read(*set);
    EXPECT_TRUE(grown.has_value());
    EXPECT_EQ(grown->size(), 3u);
    EXPECT_TRUE(lib->stop(*set).has_value());

    EXPECT_TRUE(lib->remove_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
    EXPECT_TRUE(lib->start(*set).is_ok());
    kernel.run_for(std::chrono::milliseconds(20));
    auto shrunk = lib->read(*set);
    EXPECT_TRUE(shrunk.has_value());
    EXPECT_EQ(shrunk->size(), 2u);
    EXPECT_TRUE(lib->stop(*set).has_value());
    return std::make_pair(*grown, *shrunk);
  };

  // Deterministic sim + identical call sequence: the cached plan must
  // reproduce the uncached (rebuilt-every-read) values exactly.
  const auto cached = run_sequence(true);
  const auto uncached = run_sequence(false);
  EXPECT_EQ(cached.first, uncached.first);
  EXPECT_EQ(cached.second, uncached.second);
  EXPECT_GT(cached.first[0], 0) << "P-core instructions";
  EXPECT_GT(cached.first[1], 0) << "P-core cycles";
  EXPECT_EQ(cached.first[2], 0) << "E-core event on a P-pinned thread";
  EXPECT_GT(cached.second[0], 0) << "cycles survive the removal";
}

// --- homogeneous control machine ------------------------------------------

TEST(LibraryHomogeneousTest, SinglePmuMachineBehavesTraditionally) {
  SimKernel kernel(cpumodel::homogeneous_xeon());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 5'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  EXPECT_FALSE((*lib)->hardware_info().hybrid);
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  auto info = (*lib)->eventset_info(*set);
  ASSERT_EQ((*info)[0].native_names.size(), 1u)
      << "no derived sum needed on homogeneous machines";
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GE((*values)[0], 5'000'000);
}

// --- three-core-type machine: nothing hard-codes "two" -----------------------

TEST(LibraryTriTypeTest, EventSetSpansThreeCorePmus) {
  SimKernel kernel(cpumodel::arm_three_type());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 5'000'000),
      CpuSet::all(kernel.machine().num_cpus()));
  backend.set_default_target(tid);

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value()) << lib.status().to_string();
  ASSERT_EQ((*lib)->hardware_info().detection.core_types.size(), 3u);
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
  auto info = (*lib)->eventset_info(*set);
  EXPECT_EQ((*info)[0].native_names.size(), 3u)
      << "derived preset spans all three core PMUs";
  auto groups = (*lib)->eventset_group_count(*set);
  EXPECT_EQ(*groups, 3);
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(30));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GE((*values)[0], 5'000'000);
}

}  // namespace
}  // namespace hetpapi
