// Seeded fuzz battery over the hetpapid wire protocol.
//
// Three invariant families, each driven by deterministic mt19937_64
// streams (a failure reproduces from its seed):
//
//   1. Round trip: every encodeable message type, filled with random
//      field values (including arbitrary f64 bit patterns), survives
//      encode -> frame -> FrameReader -> decode -> re-encode with
//      byte-identical payloads. Encoding is canonical, so comparing
//      bytes also proves field fidelity without NaN-equality traps.
//   2. Corruption: truncations, single-bit flips, and oversized or
//      zero length prefixes must yield a decode error or a canonical
//      re-encode — never a crash, over-read, or unbounded allocation
//      (the suite runs under ASan/UBSan in the chaos CI shard).
//   3. Garbage streams: random byte soup fed to a FrameReader in
//      random chunks either reassembles into frames (whose payloads
//      are then thrown at every decoder) or poisons the reader; both
//      are fine, crashing is not.
//
// Case volume: kRounds rounds x (24 message shapes x 3 mutations)
// plus the stream soup — comfortably past 10k cases per run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "service/proto.hpp"

namespace hetpapi {
namespace {

using namespace hetpapi::service;

using Bytes = std::vector<std::uint8_t>;
using Rng = std::mt19937_64;

constexpr int kRounds = 160;  // 160 * 24 * 3 = 11520 mutation cases

std::string rand_str(Rng& rng) {
  std::string s;
  const std::size_t len = rng() % 13;
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng() % 256));
  }
  return s;
}

std::vector<std::string> rand_str_list(Rng& rng) {
  std::vector<std::string> out;
  const std::size_t len = rng() % 4;
  for (std::size_t i = 0; i < len; ++i) out.push_back(rand_str(rng));
  return out;
}

std::vector<long long> rand_i64_list(Rng& rng) {
  std::vector<long long> out;
  const std::size_t len = rng() % 4;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<long long>(rng()));
  }
  return out;
}

std::vector<std::uint8_t> rand_u8_list(Rng& rng) {
  std::vector<std::uint8_t> out;
  const std::size_t len = rng() % 4;
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<std::uint8_t>(rng()));
  }
  return out;
}

/// Any f64 bit pattern (infs, NaNs, subnormals included): the wire
/// carries raw bits, so every pattern must survive unchanged.
double rand_f64(Rng& rng) {
  const std::uint64_t bits = rng();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

TargetKind rand_kind(Rng& rng) {
  return static_cast<TargetKind>(rng() % 3);
}

std::vector<std::pair<std::string, long long>> rand_parts(Rng& rng) {
  std::vector<std::pair<std::string, long long>> out;
  const std::size_t len = rng() % 4;
  for (std::size_t i = 0; i < len; ++i) {
    out.emplace_back(rand_str(rng), static_cast<long long>(rng()));
  }
  return out;
}

/// Decode `frame` as M; on success return the canonical re-encoding,
/// on failure nullopt. The fuzz invariants only ever need this pair.
template <typename M>
std::optional<Bytes> redecode(const Frame& frame) {
  auto m = M::decode(frame);
  if (!m.has_value()) return std::nullopt;
  return m->encode();
}

/// StatsReply is a two-shape message: decode accepts the v1 and
/// v2 lengths, so the canonical re-encode tries both versions.
std::optional<Bytes> redecode_stats(const Frame& frame) {
  auto m = StatsReply::decode(frame);
  if (!m.has_value()) return std::nullopt;
  Bytes v2 = m->encode(2);
  if (v2 == frame.payload) return v2;
  return m->encode(1);
}

/// HelloAck / WireSample / AggSample grew a v3 tail (epoch / sequence),
/// so decode accepts both the v2-prefix and v3 shapes; the canonical
/// re-encode tries the v3 rendition first and falls back to v2.
template <typename M>
std::optional<Bytes> redecode_v2_v3(const Frame& frame) {
  auto m = M::decode(frame);
  if (!m.has_value()) return std::nullopt;
  Bytes v3 = m->encode(3);
  if (v3 == frame.payload) return v3;
  return m->encode(2);
}

struct Shape {
  MsgType type;
  Bytes (*gen)(Rng&);
  std::optional<Bytes> (*redec)(const Frame&);
};

const Shape kShapes[] = {
    {MsgType::kHello,
     [](Rng& rng) {
       Hello m;
       m.version = static_cast<std::uint32_t>(rng());
       m.client_name = rand_str(rng);
       return m.encode();
     },
     &redecode<Hello>},
    {MsgType::kHelloAck,
     [](Rng& rng) {
       HelloAck m;
       m.version = static_cast<std::uint32_t>(rng());
       m.client_id = static_cast<std::uint32_t>(rng());
       m.server_name = rand_str(rng);
       m.epoch = rng();
       // Both wire shapes fuzz: the bare v2 body and the v3 epoch tail.
       return m.encode(rng() % 2 == 0 ? 2 : 3);
     },
     &redecode_v2_v3<HelloAck>},
    {MsgType::kOpenSession,
     [](Rng& rng) {
       OpenSession m;
       m.target_kind = rand_kind(rng);
       m.target = static_cast<std::int64_t>(rng());
       return m.encode();
     },
     &redecode<OpenSession>},
    {MsgType::kOpenSessionAck,
     [](Rng& rng) {
       OpenSessionAck m;
       m.session_id = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<OpenSessionAck>},
    {MsgType::kAddEvents,
     [](Rng& rng) {
       AddEvents m;
       m.session_id = static_cast<std::uint32_t>(rng());
       m.events = rand_str_list(rng);
       return m.encode();
     },
     &redecode<AddEvents>},
    {MsgType::kAddEventsAck,
     [](Rng& rng) {
       AddEventsAck m;
       m.canonical_names = rand_str_list(rng);
       return m.encode();
     },
     &redecode<AddEventsAck>},
    {MsgType::kStart,
     [](Rng& rng) {
       Start m;
       m.session_id = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<Start>},
    {MsgType::kRead,
     [](Rng& rng) {
       Read m;
       m.session_id = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<Read>},
    {MsgType::kReadReply,
     [](Rng& rng) {
       ReadReply m;
       m.values = rand_i64_list(rng);
       m.degraded = rand_u8_list(rng);
       return m.encode();
     },
     &redecode<ReadReply>},
    {MsgType::kSubscribe,
     [](Rng& rng) {
       Subscribe m;
       m.target_kind = rand_kind(rng);
       m.target = static_cast<std::int64_t>(rng());
       m.events = rand_str_list(rng);
       m.period_ticks = static_cast<std::uint32_t>(rng());
       m.qualified = static_cast<std::uint8_t>(rng());
       return m.encode();
     },
     &redecode<Subscribe>},
    {MsgType::kSubscribeAck,
     [](Rng& rng) {
       SubscribeAck m;
       m.subscription_id = static_cast<std::uint32_t>(rng());
       m.shared_key_id = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<SubscribeAck>},
    {MsgType::kUnsubscribe,
     [](Rng& rng) {
       Unsubscribe m;
       m.subscription_id = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<Unsubscribe>},
    {MsgType::kSample,
     [](Rng& rng) {
       WireSample m;
       m.subscription_id = static_cast<std::uint32_t>(rng());
       m.tick = rng();
       m.t_seconds = rand_f64(rng);
       m.values = rand_i64_list(rng);
       m.degraded = rand_u8_list(rng);
       m.counters_ok = static_cast<std::uint8_t>(rng());
       m.package_temp_c = rand_f64(rng);
       m.package_power_w = rand_f64(rng);
       const std::size_t slots = rng() % 3;
       for (std::size_t i = 0; i < slots; ++i) m.parts.push_back(rand_parts(rng));
       m.seq = rng();
       // Both wire shapes fuzz: with and without the v3 sequence tail.
       return m.encode(rng() % 2 == 0 ? 2 : 3);
     },
     &redecode_v2_v3<WireSample>},
    {MsgType::kSubscribeAggregate,
     [](Rng& rng) {
       AggSubscribe m;
       m.target_kind = rand_kind(rng);
       m.target = static_cast<std::int64_t>(rng());
       m.events = rand_str_list(rng);
       m.period_ticks = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<AggSubscribe>},
    {MsgType::kSubscribeAggregateAck,
     [](Rng& rng) {
       AggSubscribeAck m;
       m.subscription_id = static_cast<std::uint32_t>(rng());
       m.shared_key_id = static_cast<std::uint32_t>(rng());
       m.fanin = static_cast<std::uint32_t>(rng());
       return m.encode();
     },
     &redecode<AggSubscribeAck>},
    {MsgType::kAggSample,
     [](Rng& rng) {
       AggSample m;
       m.subscription_id = static_cast<std::uint32_t>(rng());
       m.tick = rng();
       m.t_seconds = rand_f64(rng);
       m.complete = static_cast<std::uint8_t>(rng());
       const std::size_t slots = rng() % 3;
       for (std::size_t i = 0; i < slots; ++i) {
         SlotStats slot;
         slot.sum = static_cast<long long>(rng());
         slot.min = static_cast<long long>(rng());
         slot.max = static_cast<long long>(rng());
         slot.avg = rand_f64(rng);
         slot.stddev = rand_f64(rng);
         slot.count = static_cast<std::uint32_t>(rng());
         slot.per_core_type = rand_parts(rng);
         m.slots.push_back(std::move(slot));
       }
       m.seq = rng();
       // Both wire shapes fuzz: with and without the v3 sequence tail.
       return m.encode(rng() % 2 == 0 ? 2 : 3);
     },
     &redecode_v2_v3<AggSample>},
    {MsgType::kGetStats, [](Rng&) { return GetStats{}.encode(); },
     &redecode<GetStats>},
    {MsgType::kStatsReply,
     [](Rng& rng) {
       StatsReply m;
       m.ticks = rng();
       m.backend_reads = rng();
       m.samples_delivered = rng();
       m.frames_received = rng();
       m.frames_sent = rng();
       m.active_clients = static_cast<std::uint32_t>(rng());
       m.active_sessions = static_cast<std::uint32_t>(rng());
       m.distinct_subscriptions = static_cast<std::uint32_t>(rng());
       m.total_subscribers = static_cast<std::uint32_t>(rng());
       m.clients_dropped_slow = static_cast<std::uint32_t>(rng());
       m.clients_closed_idle = static_cast<std::uint32_t>(rng());
       m.shards = static_cast<std::uint32_t>(rng());
       m.downstreams = static_cast<std::uint32_t>(rng());
       m.agg_subscriptions = static_cast<std::uint32_t>(rng());
       m.agg_samples_delivered = rng();
       // Both wire shapes fuzz: the v1 body and the v2 tail.
       return m.encode(rng() % 2 == 0 ? 1 : 2);
     },
     &redecode_stats},
    {MsgType::kClose, [](Rng&) { return Close{}.encode(); },
     &redecode<Close>},
    {MsgType::kCloseAck, [](Rng&) { return CloseAck{}.encode(); },
     &redecode<CloseAck>},
    {MsgType::kError,
     [](Rng& rng) {
       WireError m;
       m.code = static_cast<std::int32_t>(rng());
       m.in_reply_to = static_cast<std::uint8_t>(rng());
       m.message = rand_str(rng);
       return m.encode();
     },
     &redecode<WireError>},
    {MsgType::kGoodbye,
     [](Rng& rng) {
       Goodbye m;
       m.reason = rand_str(rng);
       return m.encode();
     },
     &redecode<Goodbye>},
    {MsgType::kPing,
     [](Rng& rng) {
       Ping m;
       m.token = rng();
       return m.encode();
     },
     &redecode<Ping>},
    {MsgType::kPong,
     [](Rng& rng) {
       Pong m;
       m.token = rng();
       return m.encode();
     },
     &redecode<Pong>},
};

/// Pull the payload back out through the framing layer, proving the
/// frame round trip along the way.
Bytes through_framing(MsgType type, const Bytes& payload) {
  FrameReader reader;
  reader.feed(encode_frame(type, payload));
  auto frame = reader.next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, type);
  // Exactly one frame came out of the stream.
  EXPECT_FALSE(reader.next().has_value());
  return frame.has_value() ? frame->payload : Bytes{};
}

TEST(ProtoFuzz, EveryMessageShapeRoundTripsSeededRandomContent) {
  Rng rng(0xc10c5eed);
  for (int round = 0; round < kRounds; ++round) {
    for (const Shape& shape : kShapes) {
      const Bytes payload = shape.gen(rng);
      SCOPED_TRACE(std::string(to_string(shape.type)) + " round " +
                   std::to_string(round));
      Frame frame;
      frame.type = shape.type;
      frame.payload = through_framing(shape.type, payload);
      const auto reencoded = shape.redec(frame);
      ASSERT_TRUE(reencoded.has_value());
      EXPECT_EQ(*reencoded, payload);
    }
  }
}

TEST(ProtoFuzz, TruncationsNeverCrashAndNeverDecodeNonCanonically) {
  Rng rng(0x7a11caded);
  for (int round = 0; round < kRounds; ++round) {
    for (const Shape& shape : kShapes) {
      const Bytes payload = shape.gen(rng);
      if (payload.empty()) continue;
      Frame frame;
      frame.type = shape.type;
      frame.payload = payload;
      frame.payload.resize(rng() % payload.size());  // strictly shorter
      SCOPED_TRACE(std::string(to_string(shape.type)) + " cut to " +
                   std::to_string(frame.payload.size()) + " of " +
                   std::to_string(payload.size()));
      const auto reencoded = shape.redec(frame);
      if (reencoded.has_value()) {
        // Only acceptable when the truncation landed exactly on a
        // shorter valid wire shape (StatsReply's v1 boundary, or the
        // v2 prefix of a v3 HelloAck/Sample/AggSample).
        EXPECT_EQ(*reencoded, frame.payload);
      }
    }
  }
}

TEST(ProtoFuzz, SingleBitFlipsNeverCrashAndStayCanonical) {
  Rng rng(0xb17f11b5);
  for (int round = 0; round < kRounds; ++round) {
    for (const Shape& shape : kShapes) {
      Bytes payload = shape.gen(rng);
      if (payload.empty()) continue;
      const std::size_t byte = rng() % payload.size();
      const std::uint8_t bit = 1u << (rng() % 8);
      payload[byte] ^= bit;
      SCOPED_TRACE(std::string(to_string(shape.type)) + " flipped byte " +
                   std::to_string(byte));
      Frame frame;
      frame.type = shape.type;
      frame.payload = payload;
      const auto reencoded = shape.redec(frame);
      if (reencoded.has_value()) {
        // A surviving decode must re-encode to exactly the mutated
        // bytes: no silent resynthesis of different wire content.
        EXPECT_EQ(*reencoded, payload);
      }
    }
  }
}

// GCC 12's -Wstringop-overflow misfires on FrameReader::feed's fully
// inlined vector insert (same analyzer bug Writer::str works around).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
TEST(ProtoFuzz, OversizedAndZeroLengthPrefixesPoisonTheFrameReader) {
  Rng rng(0x0ff5e7);
  for (int round = 0; round < 64; ++round) {
    // Impossible length prefixes: zero (the length covers the type
    // byte) and beyond-kMaxFrameBytes. Built as a raw array — GCC 12's
    // -Wstringop-overflow misfires on a fully inlined Writer here.
    const std::uint32_t bad =
        round % 2 == 0
            ? 0u
            : kMaxFrameBytes + 1 + static_cast<std::uint32_t>(rng() % 1024);
    std::uint8_t prefix[4];
    for (int i = 0; i < 4; ++i) {
      prefix[i] = static_cast<std::uint8_t>((bad >> (8 * i)) & 0xffu);
    }
    FrameReader reader;
    reader.feed(prefix, sizeof(prefix));
    auto frame = reader.next();
    ASSERT_FALSE(frame.has_value());
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(reader.corrupt());
    // Poisoned for good: feeding a well-formed frame afterwards does
    // not resurrect the stream.
    reader.feed(encode_frame(MsgType::kGetStats, GetStats{}.encode()));
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupt());
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ProtoFuzz, RandomByteSoupNeverCrashesReaderOrDecoders) {
  Rng rng(0x5009deed);
  for (int round = 0; round < 256; ++round) {
    Bytes soup;
    const std::size_t len = 1 + rng() % 512;
    soup.reserve(len);
    // Half the rounds bias the first bytes toward plausible small
    // length prefixes so the soup regularly clears framing and reaches
    // the message decoders.
    if (round % 2 == 0) {
      const std::uint32_t claimed = 1 + static_cast<std::uint32_t>(rng() % 64);
      for (int i = 0; i < 4; ++i) {
        soup.push_back(static_cast<std::uint8_t>((claimed >> (8 * i)) & 0xffu));
      }
    }
    while (soup.size() < len) {
      soup.push_back(static_cast<std::uint8_t>(rng()));
    }

    FrameReader reader;
    std::size_t fed = 0;
    while (fed < soup.size()) {
      const std::size_t chunk = std::min(soup.size() - fed, 1 + rng() % 7);
      reader.feed(soup.data() + fed, chunk);
      fed += chunk;
      for (;;) {
        auto frame = reader.next();
        if (!frame.has_value()) break;
        // Whatever reassembled, every decoder must survive it.
        for (const Shape& shape : kShapes) {
          (void)shape.redec(*frame);
        }
      }
      if (reader.corrupt()) break;
    }
  }
}

}  // namespace
}  // namespace hetpapi
