#include "base/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hetpapi {
namespace {

TEST(ThreadPool, StartupAndShutdown) {
  for (const std::size_t threads : {0u, 1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_GE(pool.thread_count(), 1u);
    EXPECT_EQ(pool.inline_mode(), threads <= 1);
  }  // destructor joins cleanly with an empty queue
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  constexpr int kTasks = 64;
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::latch done(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, SubmitExecutesInlineWithoutWorkers) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&] { ++ran; });  // must complete before submit returns
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<int> visits(kCount, 0);
    pool.parallel_for_each(kCount,
                           [&](std::size_t i) { ++visits[i]; });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
              static_cast<int>(kCount));
    for (const int v : visits) ASSERT_EQ(v, 1);
  }
}

TEST(ThreadPool, ParallelForEachResultIsOrderingIndependent) {
  // Per-index results must not depend on which worker claims which
  // index or in what order: compare a parallel run against the serial
  // reference for a deterministic per-index function.
  constexpr std::size_t kCount = 4096;
  const auto f = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  std::vector<std::uint64_t> serial(kCount);
  for (std::size_t i = 0; i < kCount; ++i) serial[i] = f(i);

  ThreadPool pool(8);
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<std::uint64_t> parallel(kCount, 0);
    pool.parallel_for_each(kCount,
                           [&](std::size_t i) { parallel[i] = f(i); });
    EXPECT_EQ(parallel, serial);
  }
}

TEST(ThreadPool, ParallelForEachPropagatesLowestIndexException) {
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for_each(100, [&](std::size_t i) {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i == 7 || i == 3 || i == 80) {
          throw std::runtime_error("failed at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failed at 3");
    }
    // Inline mode stops at the first throw; pooled mode drains all.
    if (threads <= 1) {
      EXPECT_EQ(ran.load(), 4);
    } else {
      EXPECT_EQ(ran.load(), 100);
    }
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for_each(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, StressManySmallBatches) {
  // TSAN target: hammer the queue with overlapping batches and submits
  // from several pools at once.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for_each(257, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50ull * (256ull * 257ull / 2ull));
}

}  // namespace
}  // namespace hetpapi
