// Client auto-reconnect end to end: a severed link heals through the
// connection factory under deterministic backoff, the recorded
// subscription set is replayed, and the v3 epoch + sequence/tick tail
// turns the outage into exact accounting — same epoch means the client
// knows precisely how many samples it missed; a changed epoch (daemon
// restart) is an explicit unknown gap, never a silent guess. RPCs
// interrupted by a resume fail kInterrupted so non-idempotent requests
// are never silently re-run, and a dead-silent daemon is bounded by the
// rpc deadline instead of hanging the client forever.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/faulty_transport.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;
using namespace hetpapi::service;

/// Daemon with a clean listener; only client endpoints are wrapped, so
/// sever_all() kills exactly the client-side links (the outage the
/// reconnect machinery must heal). The factory dials whatever transport
/// is current, which lets tests restart the daemon under the client.
struct ReconnectHarness {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> backend;
  std::unique_ptr<LoopbackTransport> transport;
  std::vector<std::unique_ptr<LoopbackTransport>> retired;
  std::unique_ptr<FaultyTransport> faulty;
  std::unique_ptr<Daemon> daemon;
  std::vector<Tid> tids;
  Tid tid{};

  Status init(DaemonConfig dconfig = {}) {
    kernel = std::make_unique<SimKernel>(cpumodel::raptor_lake_i7_13700());
    backend = std::make_unique<SimBackend>(kernel.get());
    for (int cpu = 0; cpu < 2; ++cpu) {
      tids.push_back(kernel->spawn(
          std::make_shared<FixedWorkProgram>(PhaseSpec{}, 4'000'000'000ull),
          CpuSet::of({cpu})));
    }
    tid = tids[0];
    faulty = std::make_unique<FaultyTransport>(
        *TransportFaultProfile::named("none"), 1);
    return start_daemon(std::move(dconfig));
  }

  Status start_daemon(DaemonConfig dconfig) {
    transport = std::make_unique<LoopbackTransport>();
    daemon = std::make_unique<Daemon>(kernel.get(), backend.get(),
                                      std::move(dconfig));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }

  /// Shut the daemon down and bring up a replacement (new transport,
  /// new config) that the factory dials transparently. The retired
  /// transport stays alive: the client still holds an endpoint into it
  /// until the heal adopts a fresh connection.
  Status restart(DaemonConfig dconfig) {
    daemon->shutdown();
    daemon.reset();  // before its transport: the pump captures it raw
    retired.push_back(std::move(transport));
    return start_daemon(std::move(dconfig));
  }

  ConnectionFactory factory() {
    return [this]() -> Expected<std::unique_ptr<Connection>> {
      return faulty->wrap(transport->connect());
    };
  }

  /// A reconnect-armed client (enable_reconnect precedes hello).
  Client connect(const std::string& name, ReconnectConfig rc = {}) {
    Client client(faulty->wrap(transport->connect()));
    client.enable_reconnect(factory(), std::move(rc));
    EXPECT_TRUE(client.hello(name).is_ok()) << name;
    return client;
  }

  void tick(int ms = 10) {
    kernel->run_for(std::chrono::milliseconds(ms));
    daemon->poll();  // drain inbound pipes (and notice dead ones)
    daemon->tick();
  }

  Subscribe spec(int which = 0) const {
    Subscribe s;
    s.target_kind = TargetKind::kThread;
    s.target = tids[static_cast<std::size_t>(which)];
    s.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
    return s;
  }
};

// --- resume + exact gap accounting -----------------------------------------

TEST(ServiceReconnect, ResumeRestoresSubscriptionsAndAccountsTheGapExactly) {
  ReconnectHarness h;
  DaemonConfig dconfig;
  dconfig.epoch = 7;
  ASSERT_TRUE(h.init(dconfig).is_ok());
  Client client = h.connect("resumer");
  EXPECT_EQ(client.epoch(), 7u);

  auto sub = client.subscribe(h.spec());
  ASSERT_TRUE(sub.has_value()) << sub.status().message();
  for (int t = 0; t < 3; ++t) h.tick();
  const auto before = client.take_samples();
  ASSERT_EQ(before.size(), 3u);
  const std::uint64_t last_tick = before.back().tick;

  // The outage: the link dies and the daemon keeps ticking without us.
  h.faulty->sever_all();
  EXPECT_FALSE(client.connected());
  constexpr int kMissedTicks = 4;
  for (int t = 0; t < kMissedTicks; ++t) h.tick();
  EXPECT_EQ(h.daemon->client_count(), 0u) << "the daemon reaped the dead pipe";

  // The next operation heals transparently: redial, re-hello,
  // re-subscribe, then the RPC itself proceeds on the new connection.
  auto stats = client.stats();
  ASSERT_TRUE(stats.has_value()) << stats.status().message();
  const ResumeStats& rs = client.resume_stats();
  EXPECT_EQ(rs.reconnects, 1u);
  EXPECT_EQ(rs.attempts, 1u);
  EXPECT_EQ(rs.epoch_changes, 0u);
  EXPECT_EQ(rs.resubscribe_failures, 0u);
  EXPECT_EQ(client.epoch(), 7u);
  const std::uint32_t resumed_id =
      client.current_subscription_id(sub->subscription_id);
  EXPECT_NE(resumed_id, 0u);

  // Samples flow again, and the first one quantifies the outage
  // exactly: same epoch, so missed = tick delta over the period.
  h.tick();
  const auto after = client.take_samples();
  ASSERT_GE(after.size(), 1u);
  EXPECT_EQ(after.front().subscription_id, resumed_id);
  EXPECT_EQ(client.resume_stats().gaps, 1u);
  EXPECT_EQ(client.resume_stats().unknown_gaps, 0u);
  EXPECT_EQ(client.resume_stats().samples_missed,
            after.front().tick - last_tick - 1);
  EXPECT_EQ(client.resume_stats().samples_missed,
            static_cast<std::uint64_t>(kMissedTicks));
}

// --- deterministic bounded backoff -----------------------------------------

std::pair<Status, std::vector<std::uint64_t>> run_exhaustion(
    std::uint64_t seed, int* dials_out) {
  ReconnectHarness h;
  EXPECT_TRUE(h.init().is_ok());
  std::vector<std::uint64_t> delays;
  ReconnectConfig rc;
  rc.seed = seed;
  rc.max_attempts = 5;
  rc.initial_backoff_ms = 10;
  rc.max_backoff_ms = 40;
  rc.jitter_frac = 0.25;
  rc.sleep_ms = [&delays](std::uint64_t ms) { delays.push_back(ms); };
  int dials = 0;
  Client client(h.faulty->wrap(h.transport->connect()));
  client.enable_reconnect(
      [&dials]() -> Expected<std::unique_ptr<Connection>> {
        ++dials;
        return make_error(StatusCode::kNotFound, "dial refused (test)");
      },
      std::move(rc));
  EXPECT_TRUE(client.hello("doomed").is_ok());
  EXPECT_TRUE(client.subscribe(h.spec()).has_value());
  h.faulty->sever_all();
  auto st = client.stats();
  EXPECT_FALSE(st.has_value());
  EXPECT_EQ(client.resume_stats().attempts, 5u);
  EXPECT_EQ(client.resume_stats().reconnects, 0u);
  if (dials_out != nullptr) *dials_out = dials;
  return {st.status(), delays};
}

TEST(ServiceReconnect, BackoffIsDeterministicBoundedAndSurfacedOnExhaustion) {
  int dials = 0;
  auto [status, delays] = run_exhaustion(23, &dials);
  // Exhaustion preserves the terminal cause's code and wraps it.
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("reconnect exhausted"), std::string::npos)
      << status.message();
  EXPECT_EQ(dials, 5);

  // One sleep before each attempt after the first; the schedule is
  // 10, 20, 40, 40 (doubling, capped) scaled by jitter in [0.75, 1.25].
  ASSERT_EQ(delays.size(), 4u);
  const std::uint64_t lo[] = {7, 14, 29, 29};
  const std::uint64_t hi[] = {13, 26, 51, 51};
  for (std::size_t i = 0; i < delays.size(); ++i) {
    EXPECT_GE(delays[i], lo[i]) << "delay " << i;
    EXPECT_LE(delays[i], hi[i]) << "delay " << i;
  }

  // Same seed, same jittered schedule, bit for bit.
  auto [again_status, again] = run_exhaustion(23, nullptr);
  EXPECT_EQ(again, delays);
  EXPECT_EQ(again_status.code(), StatusCode::kNotFound);
}

// --- epoch change across a daemon restart ----------------------------------

TEST(ServiceReconnect, DaemonRestartSurfacesEpochChangeAsUnknownGap) {
  ReconnectHarness h;
  DaemonConfig first;
  first.epoch = 1;
  ASSERT_TRUE(h.init(first).is_ok());
  Client client = h.connect("watcher");
  EXPECT_EQ(client.epoch(), 1u);
  auto sub = client.subscribe(h.spec());
  ASSERT_TRUE(sub.has_value());
  for (int t = 0; t < 2; ++t) h.tick();
  ASSERT_EQ(client.take_samples().size(), 2u);

  // Restart under a new epoch: the tick counter resets, so the outage
  // cannot be quantified — the client must say so explicitly.
  DaemonConfig second;
  second.epoch = 9;
  ASSERT_TRUE(h.restart(second).is_ok());

  // The shutdown's buffered Goodbye surfaces first as an explicit drop
  // (kNotRunning — never silently healed), then the dead pipe triggers
  // the resume, which interrupts whatever RPC was in flight.
  auto stats = client.stats();
  ASSERT_FALSE(stats.has_value());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotRunning);
  EXPECT_NE(client.goodbye_reason().find("shutting down"), std::string::npos)
      << client.goodbye_reason();
  for (int i = 0; i < 3 && !stats.has_value(); ++i) {
    const StatusCode code = stats.status().code();
    ASSERT_TRUE(code == StatusCode::kNotRunning ||
                code == StatusCode::kInterrupted)
        << stats.status().message();
    stats = client.stats();
  }
  ASSERT_TRUE(stats.has_value()) << stats.status().message();
  EXPECT_EQ(client.epoch(), 9u);
  EXPECT_EQ(client.resume_stats().reconnects, 1u);
  EXPECT_EQ(client.resume_stats().epoch_changes, 1u);

  h.tick();
  ASSERT_GE(client.take_samples().size(), 1u);
  EXPECT_EQ(client.resume_stats().unknown_gaps, 1u);
  EXPECT_EQ(client.resume_stats().gaps, 0u);
  EXPECT_EQ(client.resume_stats().samples_missed, 0u);
}

// --- mid-RPC interruption ---------------------------------------------------

TEST(ServiceReconnect, MidRpcHealSurfacesInterruptedAndTheRetrySucceeds) {
  ReconnectHarness h;
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("midflight");
  auto sub = client.subscribe(h.spec());
  ASSERT_TRUE(sub.has_value());

  // Script the failure between request and reply: the first transport
  // pump of the next RPC severs the link, after the request went out.
  bool armed = true;
  h.transport->set_pump([&h, &armed] {
    if (armed) {
      armed = false;
      h.faulty->sever_all();
    }
    h.daemon->poll();
  });

  auto st = client.stats();
  ASSERT_FALSE(st.has_value());
  EXPECT_EQ(st.status().code(), StatusCode::kInterrupted);
  EXPECT_EQ(client.resume_stats().reconnects, 1u)
      << "the connection healed even though the RPC was interrupted";

  auto retry = client.stats();
  ASSERT_TRUE(retry.has_value()) << retry.status().message();
  EXPECT_NE(client.current_subscription_id(sub->subscription_id), 0u);
  h.tick();
  EXPECT_GE(client.take_samples().size(), 1u);
}

// --- partial resubscribe ----------------------------------------------------

TEST(ServiceReconnect, RefusedResubscribeIsCountedAndTheSubMarkedDead) {
  ReconnectHarness h;
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("greedy");
  auto sub0 = client.subscribe(h.spec(0));
  ASSERT_TRUE(sub0.has_value());
  auto sub1 = client.subscribe(h.spec(1));
  ASSERT_TRUE(sub1.has_value());
  h.tick();
  ASSERT_EQ(client.take_samples().size(), 2u);

  // The replacement daemon admits only one subscription per client, so
  // the resume replays the first and is refused on the second.
  DaemonConfig capped;
  capped.epoch = 2;
  capped.max_subscriptions = 1;
  ASSERT_TRUE(h.restart(capped).is_ok());

  auto stats = client.stats();
  for (int i = 0; i < 3 && !stats.has_value(); ++i) {
    const StatusCode code = stats.status().code();
    ASSERT_TRUE(code == StatusCode::kNotRunning ||
                code == StatusCode::kInterrupted)
        << stats.status().message();
    stats = client.stats();
  }
  ASSERT_TRUE(stats.has_value()) << stats.status().message();
  EXPECT_EQ(client.resume_stats().reconnects, 1u);
  EXPECT_EQ(client.resume_stats().resubscribe_failures, 1u);
  EXPECT_NE(client.current_subscription_id(sub0->subscription_id), 0u);
  EXPECT_EQ(client.current_subscription_id(sub1->subscription_id), 0u)
      << "the refused subscription reads as dead, not resurrected";

  // The surviving subscription streams.
  h.tick();
  EXPECT_GE(client.take_samples().size(), 1u);
}

// --- bounded deadlines ------------------------------------------------------

TEST(ServiceReconnect, DeadSilentDaemonIsBoundedByTheRpcDeadline) {
  ReconnectHarness h;
  ASSERT_TRUE(h.init().is_ok());
  ReconnectConfig rc;
  rc.rpc_deadline_pumps = 8;
  rc.max_attempts = 2;
  Client client = h.connect("patient", rc);
  ASSERT_TRUE(client.subscribe(h.spec()).has_value());

  // The daemon goes catatonic: the transport stops pumping it, so a
  // request is sent but no reply ever arrives. Without the deadline
  // this loop would never return.
  h.transport->set_pump([] {});
  auto st = client.stats();
  ASSERT_FALSE(st.has_value());
  EXPECT_EQ(st.status().code(), StatusCode::kInterrupted);
  EXPECT_NE(st.status().message().find("deadline"), std::string::npos)
      << st.status().message();
}

TEST(ServiceReconnect, HandshakeAgainstASilentDaemonIsBounded) {
  ReconnectHarness h;
  ASSERT_TRUE(h.init().is_ok());
  h.transport->set_pump([] {});
  ReconnectConfig rc;
  rc.rpc_deadline_pumps = 8;
  rc.max_attempts = 1;
  Client client(h.faulty->wrap(h.transport->connect()));
  client.enable_reconnect(h.factory(), rc);
  Status st = client.hello("nobody-home");
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kInterrupted);
}

}  // namespace
}  // namespace hetpapi
