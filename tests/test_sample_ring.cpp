// Sample ring buffers (perf record semantics): record contents, drain
// behaviour, capacity/lost accounting, interaction with core types.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr sampling_attr(std::uint32_t type, std::uint64_t period) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(CountKind::kInstructions);
  attr.sample_period = period;
  return attr;
}

TEST(SampleRing, RecordsCarryTimeCpuTidAndCoreType) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({2}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(sampling_attr(pmu->type_id, 10'000'000),
                                   tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto samples = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(samples.has_value());
  ASSERT_EQ(samples->size(), 5u) << "50M instructions / 10M period";
  std::uint64_t last_time = 0;
  for (const auto& sample : *samples) {
    EXPECT_EQ(sample.cpu, 2);
    EXPECT_EQ(sample.tid, tid);
    EXPECT_EQ(sample.core_type, 0);
    EXPECT_EQ(sample.period, 10'000'000u);
    EXPECT_GE(sample.time_ns, last_time) << "monotonic timestamps";
    last_time = sample.time_ns;
  }
}

TEST(SampleRing, DrainEmptiesTheRing) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 100'000'000'000ULL),
      CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(sampling_attr(pmu->type_id, 1'000'000),
                                   tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_for(std::chrono::milliseconds(5));
  auto first = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(first.has_value());
  EXPECT_GT(first->size(), 0u);
  auto empty = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty()) << "drain removes delivered records";
  kernel.run_for(std::chrono::milliseconds(5));
  auto second = kernel.perf_read_samples(*fd);
  EXPECT_GT(second->size(), 0u) << "new records keep arriving";
}

TEST(SampleRing, FullRingDropsAndCountsLostRecords) {
  SimKernel::Config config;
  config.perf.sample_ring_capacity = 16;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 500'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(sampling_attr(pmu->type_id, 1'000'000),
                                   tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto samples = kernel.perf_read_samples(*fd);
  ASSERT_TRUE(samples.has_value());
  EXPECT_EQ(samples->size(), 16u) << "capacity-bounded";
  auto lost = kernel.perf_lost_samples(*fd);
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(samples->size() + *lost, 500u)
      << "delivered + lost = total periods";
}

TEST(SampleRing, CountingEventsHaveNoRing) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  PerfEventAttr counting;
  counting.type = pmu->type_id;
  counting.config = static_cast<std::uint64_t>(CountKind::kInstructions);
  auto fd = kernel.perf_event_open(counting, tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(kernel.perf_read_samples(*fd).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SampleRing, MigratingThreadProducesSamplesFromBothCoreTypes) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 300.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::all(24));
  const auto* p_pmu = kernel.pmus().find_by_name("cpu_core");
  const auto* e_pmu = kernel.pmus().find_by_name("cpu_atom");
  auto p_fd = kernel.perf_event_open(sampling_attr(p_pmu->type_id, 5'000'000),
                                     tid, -1, -1);
  auto e_fd = kernel.perf_event_open(sampling_attr(e_pmu->type_id, 5'000'000),
                                     tid, -1, -1);
  ASSERT_TRUE(p_fd.has_value());
  ASSERT_TRUE(e_fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(60));
  auto p_samples = kernel.perf_read_samples(*p_fd);
  auto e_samples = kernel.perf_read_samples(*e_fd);
  EXPECT_GT(p_samples->size(), 0u);
  EXPECT_GT(e_samples->size(), 0u);
  for (const auto& sample : *p_samples) {
    EXPECT_EQ(sample.core_type, 0);
    EXPECT_LT(sample.cpu, 16) << "P samples only from P cpus";
  }
  for (const auto& sample : *e_samples) {
    EXPECT_EQ(sample.core_type, 1);
    EXPECT_GE(sample.cpu, 16) << "E samples only from E cpus";
  }
}

}  // namespace
}  // namespace hetpapi
