// Scheduler timeline recording and chrome://tracing export.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "simkernel/trace.hpp"
#include "workload/programs.hpp"

namespace hetpapi::simkernel {
namespace {

using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(TraceRecorder, SegmentsCoverOccupancyWithoutOverlap) {
  TraceRecorder recorder;
  recorder.begin_segment(0, 7, SimTime::from_seconds(0.0));
  recorder.end_segment(0, SimTime::from_seconds(1.0));
  // begin over an open segment implicitly closes it.
  recorder.begin_segment(1, 8, SimTime::from_seconds(0.5));
  recorder.begin_segment(1, 9, SimTime::from_seconds(2.0));
  recorder.end_segment(1, SimTime::from_seconds(3.0));
  ASSERT_EQ(recorder.segment_count(), 3u);
  const auto& segments = recorder.segments();
  EXPECT_EQ(segments[0].tid, 7);
  EXPECT_EQ(segments[1].tid, 8);
  EXPECT_DOUBLE_EQ(segments[1].end.seconds(), 2.0)
      << "implicit close at the successor's start";
  EXPECT_EQ(segments[2].tid, 9);
}

TEST(TraceRecorder, ZeroLengthAndDanglingSegmentsAreDropped) {
  TraceRecorder recorder;
  recorder.begin_segment(0, 1, SimTime::from_seconds(1.0));
  recorder.end_segment(0, SimTime::from_seconds(1.0));  // zero length
  recorder.begin_segment(0, 2, SimTime::from_seconds(2.0));
  // never ended: stays open, not exported
  EXPECT_EQ(recorder.segment_count(), 0u);
  recorder.end_segment(5, SimTime::from_seconds(9.0));  // unknown cpu: no-op
  EXPECT_EQ(recorder.segment_count(), 0u);
}

TEST(TraceRecorder, ChromeJsonIsWellFormedish) {
  TraceRecorder recorder;
  recorder.set_thread_name(3, "hpl-worker-0");
  recorder.begin_segment(0, 3, SimTime::from_seconds(0.0));
  recorder.end_segment(0, SimTime::from_seconds(0.001));
  const std::string json =
      recorder.to_chrome_json({{0, "P-core 0"}});
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("hpl-worker-0"), std::string::npos);
  EXPECT_NE(json.find("P-core 0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos)
      << "1 ms in microseconds";
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(KernelTracing, RecordsMigrationsOfAnUnpinnedThread) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 200.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  TraceRecorder recorder;
  kernel.attach_tracer(&recorder);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000'000ULL),
      CpuSet::all(24));
  recorder.set_thread_name(tid, "wanderer");
  kernel.run_until_idle(std::chrono::seconds(30));
  kernel.attach_tracer(nullptr);

  const auto* truth = kernel.ground_truth(tid);
  ASSERT_GT(truth->migrations, 3u);
  // One completed segment per occupancy change; at least as many as
  // migrations (idle gaps may add more).
  EXPECT_GE(recorder.segment_count(), truth->migrations);
  // Total traced busy time equals the thread's cpu time.
  SimDuration traced{0};
  for (const auto& segment : recorder.segments()) {
    traced += segment.end - segment.start;
  }
  // Segments close at tick boundaries while cpu time counts partial
  // final slices, so allow a few ticks of slack.
  EXPECT_NEAR(static_cast<double>(traced.count()),
              static_cast<double>(truth->total_cpu_time.count()), 5e6);
}

TEST(KernelTracing, TwoThreadsOnOneCpuAlternate) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  TraceRecorder recorder;
  kernel.attach_tracer(&recorder);
  PhaseSpec phase;
  const Tid a = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 200'000'000),
      CpuSet::of({0}));
  const Tid b = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 200'000'000),
      CpuSet::of({0}));
  kernel.run_until_idle(std::chrono::seconds(60));
  // Alternating occupancy: consecutive segments on cpu 0 belong to
  // different threads.
  int alternations = 0;
  Tid previous = kInvalidTid;
  for (const auto& segment : recorder.segments()) {
    ASSERT_EQ(segment.cpu, 0);
    ASSERT_TRUE(segment.tid == a || segment.tid == b);
    if (previous != kInvalidTid && segment.tid != previous) ++alternations;
    previous = segment.tid;
  }
  EXPECT_GT(alternations, 5);
}

}  // namespace
}  // namespace hetpapi::simkernel
