// The wire-side fault injector under test: seeded determinism of the
// per-link op ledger, each named profile's failure semantics (short and
// zero writes, EAGAIN bursts, one-way half-close, scripted severs,
// deferred accepts), and the end-to-end guarantee the rest of the
// robustness suites lean on — a full client/daemon session survives
// every transient profile with zero transport leaks afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/faulty_transport.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;
using namespace hetpapi::service;

/// One daemon whose listener AND every client connection run through a
/// FaultyTransport, so both directions of every link see the profile.
struct ChaosHarness {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> backend;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<FaultyTransport> faulty;
  std::unique_ptr<Daemon> daemon;
  std::vector<Tid> tids;
  Tid tid{};

  Status init(const std::string& profile_name, std::uint64_t seed,
              DaemonConfig dconfig = {}) {
    kernel = std::make_unique<SimKernel>(cpumodel::raptor_lake_i7_13700());
    backend = std::make_unique<SimBackend>(kernel.get());
    for (int cpu = 0; cpu < 2; ++cpu) {
      tids.push_back(kernel->spawn(
          std::make_shared<FixedWorkProgram>(PhaseSpec{}, 4'000'000'000ull),
          CpuSet::of({cpu})));
    }
    tid = tids[0];
    transport = std::make_unique<LoopbackTransport>();
    auto profile = TransportFaultProfile::named(profile_name);
    if (!profile.has_value()) return profile.status();
    faulty = std::make_unique<FaultyTransport>(*profile, seed);
    daemon = std::make_unique<Daemon>(kernel.get(), backend.get(),
                                      std::move(dconfig));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(faulty->wrap_listener(transport->listener()));
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }

  /// A client whose own endpoint is wrapped too (the accepted server
  /// side wraps through the listener automatically).
  Client connect(const std::string& name) {
    Client client(faulty->wrap(transport->connect()));
    EXPECT_TRUE(client.hello(name).is_ok()) << name;
    return client;
  }

  void tick(int ms = 10) {
    kernel->run_for(std::chrono::milliseconds(ms));
    daemon->poll();  // drain inbound pipes (and notice dead ones)
    daemon->tick();
  }

  Subscribe spec() const {
    Subscribe s;
    s.target_kind = TargetKind::kThread;
    s.target = tid;
    s.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
    return s;
  }
};

// --- profiles --------------------------------------------------------------

TEST(FaultyTransport, NamedProfilesRoundTripAndUnknownIsRejected) {
  for (const std::string& name : TransportFaultProfile::profile_names()) {
    auto profile = TransportFaultProfile::named(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_EQ(profile->name, name);
  }
  auto unknown = TransportFaultProfile::named("not-a-profile");
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

// --- seeded determinism ----------------------------------------------------

/// A fixed multi-client scenario under the mixed profile; returns the
/// flattened op ledger of every link plus the accept-deferral count.
std::vector<std::uint64_t> run_mixed_scenario(std::uint64_t seed) {
  ChaosHarness h;
  EXPECT_TRUE(h.init("mixed", seed).is_ok());
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 3; ++i) {
    auto c = std::make_unique<Client>(h.faulty->wrap(h.transport->connect()));
    // Under "mixed" the handshake itself may legitimately die on an
    // injected disconnect; survivors subscribe and stream.
    if (c->hello("c" + std::to_string(i)).is_ok()) {
      (void)c->subscribe(h.spec());
    }
    clients.push_back(std::move(c));
  }
  for (int t = 0; t < 16; ++t) {
    h.tick(5);
    for (auto& c : clients) {
      if (c->connected()) (void)c->pump_once();
    }
  }
  std::vector<std::uint64_t> ledger;
  for (std::size_t i = 0; i < h.faulty->link_count(); ++i) {
    const auto& s = h.faulty->link_stats(i);
    for (std::uint64_t v :
         {s.sends, s.receives, s.bytes_sent, s.bytes_received, s.short_writes,
          s.zero_writes, s.recv_eagains, s.stall_ops_served, s.severs,
          s.half_closes}) {
      ledger.push_back(v);
    }
  }
  ledger.push_back(h.faulty->accept_deferrals());
  h.daemon->shutdown();
  return ledger;
}

TEST(FaultyTransport, SameSeedReproducesTheExactOpLedger) {
  const auto first = run_mixed_scenario(41);
  const auto second = run_mixed_scenario(41);
  EXPECT_EQ(first, second) << "wire chaos must be a deterministic test";
  // And the profile actually did something worth reproducing.
  EXPECT_GT(std::count_if(first.begin(), first.end(),
                          [](std::uint64_t v) { return v > 0; }),
            0);
}

// --- transient profiles: sessions survive ----------------------------------

TEST(FaultyTransport, SessionsSurviveEveryTransientProfile) {
  // None of these profiles injects a permanent failure, so the full
  // session lifecycle must complete: handshake, coalesced subscribe,
  // every sample delivered, stats RPC, polite close. The ledger proves
  // faults fired; the open-connection count proves nothing leaked.
  for (const char* profile :
       {"trickle", "short-write", "eagain-burst", "stall"}) {
    SCOPED_TRACE(profile);
    ChaosHarness h;
    ASSERT_TRUE(h.init(profile, 9).is_ok());
    Client a = h.connect("a");
    Client b = h.connect("b");
    auto sub_a = a.subscribe(h.spec());
    ASSERT_TRUE(sub_a.has_value()) << sub_a.status().message();
    auto sub_b = b.subscribe(h.spec());
    ASSERT_TRUE(sub_b.has_value()) << sub_b.status().message();
    EXPECT_EQ(sub_b->shared_key_id, sub_a->shared_key_id);

    constexpr int kTicks = 8;
    std::size_t got_a = 0, got_b = 0;
    for (int t = 0; t < kTicks; ++t) {
      h.tick();
      got_a += a.take_samples().size();
      got_b += b.take_samples().size();
    }
    // Stalled frames flush on later pumps; drain before counting.
    while (a.pump_once()) {
    }
    while (b.pump_once()) {
    }
    got_a += a.take_samples().size();
    got_b += b.take_samples().size();
    EXPECT_EQ(got_a, static_cast<std::size_t>(kTicks));
    EXPECT_EQ(got_b, static_cast<std::size_t>(kTicks));

    auto stats = a.stats();
    ASSERT_TRUE(stats.has_value()) << stats.status().message();
    EXPECT_EQ(stats->total_subscribers, 2u);

    EXPECT_TRUE(a.close().is_ok());
    EXPECT_TRUE(b.close().is_ok());
    h.daemon->poll();
    h.daemon->shutdown();
    EXPECT_GT(h.faulty->total_injected(), 0u) << "the profile actually fired";
    EXPECT_EQ(h.faulty->open_connection_count(), 0u) << "leaked endpoints";
  }
}

// --- scripted sever --------------------------------------------------------

TEST(FaultyTransport, SeverKillsBothDirectionsAndTheDaemonReaps) {
  ChaosHarness h;
  ASSERT_TRUE(h.init("none", 1).is_ok());
  std::optional<Client> client(h.connect("victim"));
  ASSERT_TRUE(client->subscribe(h.spec()).has_value());
  EXPECT_EQ(h.daemon->client_count(), 1u);

  // Link 0 is the client's endpoint (wrapped at dial); link 1 is the
  // accepted server side.
  ASSERT_EQ(h.faulty->link_count(), 2u);
  h.faulty->sever(0);
  EXPECT_FALSE(client->connected());
  EXPECT_EQ(h.faulty->link_stats(0).severs, 1u);

  auto refused = client->stats();
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotRunning);

  // The daemon notices the dead pipe on its next service pass and
  // tears the client down without stalling.
  for (int t = 0; t < 3; ++t) h.tick();
  EXPECT_EQ(h.daemon->client_count(), 0u);
  h.daemon->shutdown();
  client.reset();  // drops the severed endpoint
  EXPECT_EQ(h.faulty->open_connection_count(), 0u);
}

// --- half-close ------------------------------------------------------------

TEST(FaultyTransport, HalfCloseIsOneWayOnly) {
  // A peer that can hear us but never answer: sends fail permanently,
  // receives keep delivering the other side's bytes.
  TransportFaultProfile profile;
  profile.name = "always-half-close";
  profile.half_close_prob = 1.0;

  LoopbackTransport loopback;
  auto client_end = loopback.connect();
  auto server_end = loopback.listener()->accept();
  ASSERT_TRUE(server_end.has_value());

  FaultyTransport faulty(profile, 1);
  auto wrapped = faulty.wrap(std::move(client_end));

  const std::uint8_t payload[] = {1, 2, 3, 4};
  auto sent = wrapped->send(payload, sizeof(payload));
  ASSERT_FALSE(sent.has_value());
  EXPECT_EQ(sent.status().code(), StatusCode::kNotRunning);
  EXPECT_EQ(faulty.link_stats(0).half_closes, 1u);
  EXPECT_TRUE(wrapped->is_open()) << "half-closed, not severed";

  // The reverse direction still works.
  ASSERT_TRUE((*server_end)->send(payload, sizeof(payload)).has_value());
  std::vector<std::uint8_t> received;
  auto n = wrapped->receive(received);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, sizeof(payload));
  EXPECT_EQ(received, std::vector<std::uint8_t>(payload, payload + 4));

  // And sends stay dead: half-close never heals on its own.
  auto again = wrapped->send(payload, sizeof(payload));
  EXPECT_FALSE(again.has_value());

  wrapped->close();
  (*server_end)->close();
  EXPECT_EQ(faulty.open_connection_count(), 0u);
}

// --- flaky accept ----------------------------------------------------------

TEST(FaultyTransport, FlakyAcceptDefersButNeverLosesADial) {
  TransportFaultProfile profile;
  profile.name = "always-defer";
  profile.accept_fail_prob = 1.0;

  LoopbackTransport loopback;
  FaultyTransport faulty(profile, 3);
  Listener* listener = faulty.wrap_listener(loopback.listener());

  std::vector<std::unique_ptr<Connection>> dials;
  for (int i = 0; i < 3; ++i) dials.push_back(loopback.connect());

  // Every fresh accept defers; the deferred connection is handed out on
  // the very next poll with no second roll, so admission alternates
  // defer/accept and nothing is ever dropped.
  std::size_t accepted = 0, deferred = 0;
  for (int i = 0; i < 20 && accepted < dials.size(); ++i) {
    auto conn = listener->accept();
    if (conn.has_value()) {
      ++accepted;
      (*conn)->close();
    } else {
      ASSERT_EQ(conn.status().code(), StatusCode::kNotFound);
      ++deferred;
    }
  }
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(deferred, 3u) << "each dial deferred exactly once";
  EXPECT_EQ(faulty.accept_deferrals(), 3u);
  EXPECT_EQ(faulty.open_connection_count(), 0u);
}

}  // namespace
}  // namespace hetpapi
