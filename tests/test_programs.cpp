// Program building blocks: FixedWorkProgram, WorkQueueProgram,
// SpinProgram, and the run_phase_slice progress contract.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi::workload {
namespace {

using simkernel::CpuSet;
using simkernel::ExecContext;
using simkernel::SimKernel;
using simkernel::Tid;

ExecContext make_context(const cpumodel::CoreTypeSpec* core,
                         MegaHertz frequency) {
  ExecContext ctx;
  ctx.core_type = core;
  ctx.frequency = frequency;
  return ctx;
}

TEST(RunPhaseSlice, RespectsInstructionCap) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const ExecContext ctx = make_context(&machine.core_types[0],
                                       MegaHertz{3000});
  PhaseSpec phase;
  const auto slice =
      run_phase_slice(ctx, phase, std::chrono::milliseconds(10), 1000);
  EXPECT_EQ(slice.counts.instructions, 1000u);
  EXPECT_LT(slice.consumed, std::chrono::milliseconds(10))
      << "tiny work finishes early and returns the leftover budget";
}

TEST(RunPhaseSlice, GuaranteesProgressOnTinyBudgets) {
  const auto machine = cpumodel::raptor_lake_i7_13700();
  const ExecContext ctx = make_context(&machine.core_types[1],
                                       MegaHertz{800});
  PhaseSpec phase;
  // A 1 ns budget fits no instruction at this CPI; the slice must still
  // consume the budget and retire at least one instruction so callers
  // cannot spin forever.
  const auto slice =
      run_phase_slice(ctx, phase, SimDuration{1}, 1'000'000);
  EXPECT_GE(slice.counts.instructions, 1u);
  EXPECT_EQ(slice.consumed, SimDuration{1});
}

TEST(FixedWorkProgram, RetiresExactlyTheRequestedInstructions) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 123'456'789), CpuSet::of({0}));
  kernel.run_until_idle(std::chrono::seconds(60));
  EXPECT_EQ(kernel.ground_truth(tid)->total().instructions, 123'456'789u);
  EXPECT_FALSE(kernel.thread_alive(tid));
}

TEST(FixedWorkProgram, ZeroInstructionsFinishesImmediately) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  PhaseSpec phase;
  const Tid tid = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 0),
                               CpuSet::of({0}));
  kernel.run_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(kernel.thread_alive(tid));
  EXPECT_EQ(kernel.ground_truth(tid)->total().instructions, 0u);
}

TEST(WorkQueueProgram, DrainsChunksInOrderAndIdlesBetween) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  auto program = std::make_shared<WorkQueueProgram>();
  const Tid tid = kernel.spawn(program, CpuSet::of({0}));

  PhaseSpec compute;
  compute.flops_per_instr = 2.0;
  program->enqueue(compute, 10'000'000);
  kernel.run_for(std::chrono::seconds(1));
  EXPECT_TRUE(program->idle());
  const auto after_first = kernel.ground_truth(tid)->total();
  EXPECT_EQ(after_first.instructions, 10'000'000u);
  EXPECT_EQ(after_first.flops_dp, 20'000'000u);

  // Idle period: no instructions retired while waiting.
  kernel.run_for(std::chrono::seconds(1));
  EXPECT_EQ(kernel.ground_truth(tid)->total().instructions, 10'000'000u);
  EXPECT_TRUE(kernel.thread_alive(tid)) << "waiting, not exited";

  PhaseSpec memory = phases::memory_bound();
  program->enqueue(memory, 5'000'000);
  program->enqueue(compute, 5'000'000);
  kernel.run_for(std::chrono::seconds(2));
  const auto total = kernel.ground_truth(tid)->total();
  EXPECT_EQ(total.instructions, 20'000'000u);
  EXPECT_GT(total.llc_misses, 0u) << "memory chunk ran";

  program->finish();
  kernel.run_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(kernel.thread_alive(tid));
}

TEST(SpinProgram, BoundedSpinEndsOnTime) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  const Tid tid = kernel.spawn(
      std::make_shared<SpinProgram>(std::chrono::milliseconds(50)),
      CpuSet::of({0}));
  kernel.run_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(kernel.thread_alive(tid));
  kernel.run_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(kernel.thread_alive(tid));
  // Spin retires instructions at low activity.
  EXPECT_GT(kernel.ground_truth(tid)->total().instructions, 0u);
}

TEST(SpinProgram, UnboundedSpinRunsUntilAbandoned) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  const Tid tid = kernel.spawn(std::make_shared<SpinProgram>(),
                               CpuSet::of({0}));
  kernel.run_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(kernel.thread_alive(tid));
  const auto cpu_time = kernel.ground_truth(tid)->total_cpu_time;
  EXPECT_NEAR(static_cast<double>(cpu_time.count()), 100e6, 1e6)
      << "the spinner owns the cpu for the whole window";
}

TEST(Injection, OverheadInstructionsLandInTheNextSlice) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  auto program = std::make_shared<WorkQueueProgram>();
  const Tid tid = kernel.spawn(program, CpuSet::of({0}));
  PhaseSpec phase;
  program->enqueue(phase, 1'000'000);
  kernel.inject_instructions(tid, 5'000);
  kernel.run_for(std::chrono::seconds(1));
  EXPECT_EQ(kernel.ground_truth(tid)->total().instructions, 1'005'000u);
}

}  // namespace
}  // namespace hetpapi::workload
