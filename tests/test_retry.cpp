// The bounded-retry helpers (papi/retry.hpp) against a scripted fake
// backend: transient (kInterrupted) failures are retried up to the
// budget and no further, non-transient failures pass through on the
// first attempt, and a success mid-burst stops the retrying.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "papi/backend.hpp"
#include "papi/retry.hpp"

namespace hetpapi {
namespace {

using papi::Backend;
using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;
using simkernel::PerfValue;
using simkernel::Tid;

class NullHost final : public pfm::Host {
 public:
  Expected<std::string> read_file(std::string_view) const override {
    return make_error(StatusCode::kNotFound, "null host");
  }
  Expected<std::vector<std::string>> list_dir(std::string_view) const override {
    return make_error(StatusCode::kNotFound, "null host");
  }
  Expected<cpumodel::IntelCoreKind> cpuid_core_kind(int) const override {
    return make_error(StatusCode::kNotSupported, "null host");
  }
  int num_cpus() const override { return 1; }
};

/// Plays back a per-call script of status codes (kOk = succeed) and
/// counts the attempts each entry point received.
class ScriptedBackend final : public Backend {
 public:
  std::deque<StatusCode> script;
  int open_calls = 0;
  int ioctl_calls = 0;
  int read_calls = 0;
  int read_group_calls = 0;

  Expected<int> perf_event_open(const PerfEventAttr&, Tid, int, int,
                                std::uint64_t) override {
    ++open_calls;
    if (const Status s = next(); !s.is_ok()) return s;
    return 42;
  }
  Status perf_ioctl(int, PerfIoctl, std::uint32_t) override {
    ++ioctl_calls;
    return next();
  }
  Expected<PerfValue> perf_read(int) override {
    ++read_calls;
    if (const Status s = next(); !s.is_ok()) return s;
    PerfValue v;
    v.value = 7;
    return v;
  }
  Expected<std::vector<PerfValue>> perf_read_group(int) override {
    ++read_group_calls;
    if (const Status s = next(); !s.is_ok()) return s;
    return std::vector<PerfValue>{PerfValue{}, PerfValue{}};
  }
  Expected<std::uint64_t> perf_rdpmc(int) override {
    return make_error(StatusCode::kNotSupported, "scripted");
  }
  Status perf_close(int) override { return Status::ok(); }
  const pfm::Host& host() const override { return host_; }
  Tid default_target() const override { return 0; }
  void charge_call_overhead(Tid, std::uint64_t) override {}

 private:
  Status next() {
    // Script exhausted = succeed from here on.
    if (script.empty()) return Status::ok();
    const StatusCode code = script.front();
    script.pop_front();
    if (code == StatusCode::kOk) return Status::ok();
    return Status(code, "scripted failure");
  }

  NullHost host_;
};

PerfEventAttr any_attr() { return PerfEventAttr{}; }

TEST(Retry, TransientBurstShorterThanBudgetSucceeds) {
  ScriptedBackend backend;
  backend.script = {StatusCode::kInterrupted, StatusCode::kInterrupted};
  auto fd = papi::open_with_retry(backend, any_attr(), 0, -1, -1, 0,
                                  /*max_attempts=*/4);
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(*fd, 42);
  EXPECT_EQ(backend.open_calls, 3);  // two transients + the success
}

TEST(Retry, BudgetExhaustionSurfacesTheTransient) {
  ScriptedBackend backend;
  backend.script = {StatusCode::kInterrupted, StatusCode::kInterrupted,
                    StatusCode::kInterrupted, StatusCode::kInterrupted};
  auto fd = papi::open_with_retry(backend, any_attr(), 0, -1, -1, 0,
                                  /*max_attempts=*/3);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kInterrupted);
  EXPECT_EQ(backend.open_calls, 3);  // exactly the budget, never more
}

TEST(Retry, NonTransientFailurePassesThroughImmediately) {
  ScriptedBackend backend;
  backend.script = {StatusCode::kPermission};
  auto fd = papi::open_with_retry(backend, any_attr(), 0, -1, -1, 0,
                                  /*max_attempts=*/10);
  ASSERT_FALSE(fd.has_value());
  EXPECT_EQ(fd.status().code(), StatusCode::kPermission);
  EXPECT_EQ(backend.open_calls, 1);

  backend.script = {StatusCode::kInterrupted, StatusCode::kNotFound};
  auto read = papi::read_with_retry(backend, 42, /*max_attempts=*/10);
  ASSERT_FALSE(read.has_value());
  // The retry rode out the transient, then hit (and surfaced) the real
  // failure behind it.
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(backend.read_calls, 2);
}

TEST(Retry, SingleAttemptBudgetMeansOneCall) {
  ScriptedBackend backend;
  backend.script = {StatusCode::kInterrupted};
  const Status s = papi::ioctl_with_retry(backend, 42, PerfIoctl::kEnable, 0,
                                          /*max_attempts=*/1);
  EXPECT_EQ(s.code(), StatusCode::kInterrupted);
  EXPECT_EQ(backend.ioctl_calls, 1);
}

TEST(Retry, IoctlAndGroupReadRetryLikeTheRest) {
  ScriptedBackend backend;
  backend.script = {StatusCode::kInterrupted, StatusCode::kOk};
  EXPECT_TRUE(
      papi::ioctl_with_retry(backend, 1, PerfIoctl::kEnable, 0, 3).is_ok());
  EXPECT_EQ(backend.ioctl_calls, 2);

  backend.script = {StatusCode::kInterrupted, StatusCode::kInterrupted};
  auto group = papi::read_group_with_retry(backend, 1, /*max_attempts=*/3);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->size(), 2u);
  EXPECT_EQ(backend.read_group_calls, 3);
}

TEST(Retry, ImmediateSuccessNeverRetries) {
  ScriptedBackend backend;
  auto value = papi::read_with_retry(backend, 1, /*max_attempts=*/5);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, 7u);
  EXPECT_EQ(backend.read_calls, 1);
}

}  // namespace
}  // namespace hetpapi
