// SimKernel time semantics, memory-bandwidth contention, and the folded
// uncore path (§V-3: uncore events in ordinary mixed EventSets).
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(Kernel, RunForAdvancesExactWholeTicks) {
  SimKernel::Config config;
  config.tick = std::chrono::microseconds(500);
  SimKernel kernel(cpumodel::homogeneous_xeon(1), config);
  kernel.run_for(std::chrono::milliseconds(3));
  EXPECT_EQ(kernel.now().since_epoch, std::chrono::milliseconds(3));
  // A non-multiple duration rounds up to whole ticks.
  kernel.run_for(std::chrono::microseconds(750));
  EXPECT_EQ(kernel.now().since_epoch, std::chrono::microseconds(4000));
}

TEST(Kernel, RunUntilIdleReturnsElapsedAndStopsAtDeadline) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  PhaseSpec phase;
  kernel.spawn(std::make_shared<FixedWorkProgram>(
                   phase, 1'000'000'000'000ULL),  // will not finish
               CpuSet::of({0}));
  const SimDuration elapsed =
      kernel.run_until_idle(std::chrono::milliseconds(50));
  EXPECT_EQ(elapsed, std::chrono::milliseconds(50)) << "deadline respected";
  EXPECT_TRUE(kernel.any_thread_alive());
}

TEST(Kernel, SpawnCountsAndGroundTruthLookup) {
  SimKernel kernel(cpumodel::homogeneous_xeon(2));
  EXPECT_EQ(kernel.spawned_count(), 0);
  PhaseSpec phase;
  const Tid a = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 100));
  const Tid b = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 100));
  EXPECT_EQ(kernel.spawned_count(), 2);
  EXPECT_NE(a, b);
  EXPECT_NE(kernel.ground_truth(a), nullptr);
  EXPECT_EQ(kernel.ground_truth(99), nullptr);
}

TEST(Kernel, MemoryContentionSlowsCoRunners) {
  // One memory-bound thread alone vs. eight together: bandwidth
  // saturation must inflate the per-thread runtime.
  const auto run_n = [](int n_threads) {
    SimKernel kernel(cpumodel::raptor_lake_i7_13700());
    PhaseSpec hog = workload::phases::memory_bound();
    // A prefetch-friendly stream: misses mostly overlapped, so each
    // thread actually moves ~12 GB/s and eight of them oversubscribe
    // the 68 GB/s budget.
    hog.llc_refs_per_kinstr = 300.0;
    hog.llc_miss_ratio = 1.0;
    hog.mlp_overlap_override = 0.95;
    std::vector<Tid> tids;
    for (int i = 0; i < n_threads; ++i) {
      tids.push_back(kernel.spawn(
          std::make_shared<FixedWorkProgram>(hog, 100'000'000),
          CpuSet::of({2 * i})));
    }
    kernel.run_until_idle(std::chrono::seconds(120));
    return std::chrono::duration<double>(
               kernel.ground_truth(tids[0])->total_cpu_time)
        .count();
  };
  const double alone = run_n(1);
  const double crowded = run_n(8);
  EXPECT_GT(crowded, alone * 1.2)
      << "8 streams over a 68 GB/s budget must contend";
}

TEST(Kernel, FoldedUncoreJoinsMixedEventSetAndDropsGlobalExclusivity) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  phase.llc_refs_per_kinstr = 10.0;
  phase.llc_miss_ratio = 0.5;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 2'000'000'000ULL),
      CpuSet::of({0}));
  backend.set_default_target(tid);

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());

  // §V-3, completed: IMC events share an EventSet with a derived preset
  // — one mixed set where the legacy world forced two components.
  auto mixed = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*mixed, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(
      (*lib)->add_event(*mixed, "unc_imc_0::UNC_M_CAS_COUNT:RD").is_ok())
      << "uncore events fold into ordinary EventSets";

  // The retired component's package-global exclusivity went with it: a
  // second thread's EventSet may watch the IMC concurrently, as perf
  // itself allows for uncore counters.
  const Tid other = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::of({2}));
  auto second = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->attach(*second, other).is_ok());
  ASSERT_TRUE(
      (*lib)->add_event(*second, "unc_imc_0::UNC_M_CAS_COUNT:WR").is_ok());

  ASSERT_TRUE((*lib)->start(*mixed).is_ok());
  ASSERT_TRUE((*lib)->start(*second).is_ok());
  kernel.run_for(std::chrono::seconds(1));
  auto mixed_values = (*lib)->stop(*mixed);
  ASSERT_TRUE(mixed_values.has_value());
  EXPECT_GT((*mixed_values)[0], 0) << "instructions retired";
  EXPECT_GT((*mixed_values)[1], 0) << "IMC reads observed";
  ASSERT_TRUE((*lib)->stop(*second).has_value());
}

TEST(Kernel, RdpmcConfigFallsBackOnGroupReads) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  LibraryConfig config;
  config.use_rdpmc = true;
  config.call_overhead_instructions = 0;
  auto lib = Library::init(&backend, config);
  auto set = (*lib)->create_eventset();
  // Multi-member group: rdpmc cannot serve it, the syscall path must.
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(
      (*lib)->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  // Plus an E-core singleton that rdpmc CAN serve while resident.
  ASSERT_TRUE((*lib)->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ((*values)[0], 50'000'000);
  EXPECT_GT((*values)[1], 0);
  EXPECT_EQ((*values)[2], 0) << "pinned to a P core: E event reads zero";
}

}  // namespace
}  // namespace hetpapi
