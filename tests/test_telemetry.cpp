// Telemetry: the 1 Hz sampler (frequency, temperature, RAPL with wrap
// handling), thermal-settle protocol, and multi-run aggregation.
#include <gtest/gtest.h>

#include <cmath>

#include "base/strings.hpp"

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/sampler.hpp"
#include "workload/programs.hpp"

namespace hetpapi::telemetry {
namespace {

using simkernel::CpuSet;
using simkernel::SimKernel;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(Sampler, ReadsFrequencyTemperatureAndPower) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  phase.activity = 1.0;
  for (int cpu = 0; cpu < 16; cpu += 2) {  // load all 8 P cores
    kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 2'000'000'000'000ULL),
        CpuSet::of({cpu}));
  }
  Sampler sampler(&kernel);
  sampler.sample();  // baseline
  kernel.run_for(std::chrono::seconds(20));  // still mid-run when sampled
  const Sample sample = sampler.sample();
  ASSERT_EQ(sample.core_freq_mhz.size(), 24u);
  EXPECT_GT(sample.core_freq_mhz[0], 3000.0) << "busy P core clocked up";
  EXPECT_NEAR(sample.core_freq_mhz[16], 800.0, 1.0) << "idle E core parked";
  EXPECT_GT(sample.package_temp_c, 35.0);
  EXPECT_FALSE(std::isnan(sample.package_power_w));
  EXPECT_GT(sample.package_power_w, 5.0);
  EXPECT_GT(sample.board_power_w, sample.package_power_w)
      << "wall power includes PSU loss and board idle";
}

TEST(Sampler, PowerIsNanWithoutRapl) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  Sampler sampler(&kernel);
  sampler.sample();
  kernel.run_for(std::chrono::seconds(1));
  const Sample sample = sampler.sample();
  EXPECT_TRUE(std::isnan(sample.package_power_w));
  EXPECT_GT(sample.board_power_w, 0.0) << "the wall meter still reads";
}

TEST(Sampler, UnwrapsTheEnergyCounterAcrossWraps) {
  // 2^32 uJ = ~4295 J wraps after ~66 s at 65 W. Run long enough to wrap
  // and check the derived power stays sane throughout.
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  for (int cpu = 0; cpu < 16; cpu += 2) {
    kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 4'000'000'000'000ULL),
        CpuSet::of({cpu}));
  }
  Sampler sampler(&kernel);
  sampler.sample();
  bool wrapped = false;
  std::uint64_t last_raw = 0;
  for (int second = 0; second < 120; ++second) {
    kernel.run_for(std::chrono::seconds(1));
    const auto raw = kernel.sysfs_read(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    const auto value =
        static_cast<std::uint64_t>(*parse_int(trim(*raw)));
    if (value < last_raw) wrapped = true;
    last_raw = value;
    const Sample sample = sampler.sample();
    ASSERT_FALSE(std::isnan(sample.package_power_w));
    ASSERT_GT(sample.package_power_w, 10.0) << "second " << second;
    ASSERT_LT(sample.package_power_w, 250.0) << "second " << second;
  }
  EXPECT_TRUE(wrapped) << "test must actually cross the 32-bit boundary";
}

TEST(Monitor, ThermalSettleWaitsForCooldown) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  // Heat the package with all P cores.
  PhaseSpec phase;
  phase.activity = 1.0;
  for (int cpu = 0; cpu < 16; cpu += 2) {
    kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 100'000'000'000ULL),
        CpuSet::of({cpu}));
  }
  kernel.run_until_idle(std::chrono::seconds(60));
  ASSERT_GT(kernel.governor().package_temperature().value, 35.5);
  wait_for_thermal_settle(kernel, 35.0, 600.0);
  EXPECT_LE(kernel.governor().package_temperature().value, 35.2);
}

TEST(Monitor, AverageRunsAlignsAndAverages) {
  RunResult a;
  RunResult b;
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.t_seconds = i;
    s.core_freq_mhz = {1000.0, 2000.0};
    s.package_temp_c = 50.0;
    s.package_power_w = 60.0;
    s.board_power_w = 70.0;
    a.samples.push_back(s);
    s.core_freq_mhz = {3000.0, 4000.0};
    s.package_temp_c = 70.0;
    s.package_power_w = 80.0;
    b.samples.push_back(s);
  }
  b.samples.pop_back();  // shorter run truncates the average
  a.gflops = 100.0;
  b.gflops = 200.0;
  a.elapsed = std::chrono::seconds(10);
  b.elapsed = std::chrono::seconds(20);

  const RunResult avg = average_runs({a, b});
  ASSERT_EQ(avg.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(avg.samples[0].core_freq_mhz[0], 2000.0);
  EXPECT_DOUBLE_EQ(avg.samples[0].core_freq_mhz[1], 3000.0);
  EXPECT_DOUBLE_EQ(avg.samples[0].package_temp_c, 60.0);
  EXPECT_DOUBLE_EQ(avg.samples[0].package_power_w, 70.0);
  EXPECT_DOUBLE_EQ(avg.gflops, 150.0);
  EXPECT_EQ(avg.elapsed, std::chrono::seconds(15));
}

TEST(Monitor, AverageRunsHandlesNanPower) {
  RunResult a;
  Sample s;
  s.t_seconds = 0;
  s.core_freq_mhz = {1000.0};
  s.package_power_w = std::nan("");
  a.samples.push_back(s);
  RunResult b = a;
  b.samples[0].package_power_w = 42.0;
  const RunResult avg = average_runs({a, b});
  EXPECT_DOUBLE_EQ(avg.samples[0].package_power_w, 42.0)
      << "NaN samples are excluded from the power average";
}

TEST(Monitor, SampleEventsFillPerSampleCounters) {
  // The monitor builds a measurement Library over the same kernel when
  // sample_events is set: every Sample carries one counter value per
  // requested event (preset, native or sysinfo — whatever the component
  // registry serves).
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(machine, config);
  MonitorConfig monitor;
  monitor.sample_events = {"PAPI_TOT_INS", "sysinfo::SYS_CPU_TIME_MS"};
  const std::vector<int> cpus = machine.primary_threads_of_type(0);
  const RunResult run = run_monitored_hpl(
      kernel, workload::HplConfig::openblas(13824, 192), cpus, monitor);
  EXPECT_EQ(run.counter_names, monitor.sample_events);
  ASSERT_GE(run.samples.size(), 2u);
  for (const Sample& s : run.samples) {
    ASSERT_EQ(s.counters.size(), 2u);
  }
  const Sample& last = run.samples.back();
  EXPECT_GT(last.counters[0], 0.0) << "master worker retired instructions";
  EXPECT_GT(last.counters[1], 0.0) << "system-wide busy time advanced";
  EXPECT_GE(last.counters[0], run.samples[1].counters[0])
      << "counters are monotonic across samples";
}

TEST(Monitor, PerCoreTypeCountersSplitEverySample) {
  // per_core_type_counters routes the sampler through the qualified
  // read: each sample additionally carries the per-PMU constituents of
  // every counter slot, labelled by detected core type, and the labelled
  // parts sum back to the transparent total.
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(machine, config);
  MonitorConfig monitor;
  monitor.sample_events = {"PAPI_TOT_INS"};
  monitor.per_core_type_counters = true;
  const std::vector<int> cpus = machine.primary_threads_of_type(0);
  const RunResult run = run_monitored_hpl(
      kernel, workload::HplConfig::openblas(13824, 192), cpus, monitor);
  ASSERT_EQ(run.counter_part_names.size(), 1u);
  ASSERT_EQ(run.counter_part_names[0].size(), 2u) << "one part per core PMU";
  EXPECT_EQ(run.counter_part_names[0][0],
            "adl_glc::INST_RETIRED:ANY[intel_core]");
  EXPECT_EQ(run.counter_part_names[0][1],
            "adl_grt::INST_RETIRED:ANY[intel_atom]");
  ASSERT_GE(run.samples.size(), 2u);
  for (const Sample& s : run.samples) {
    ASSERT_EQ(s.counters.size(), 1u);
    ASSERT_EQ(s.counter_parts.size(), 1u);
    ASSERT_EQ(s.counter_parts[0].size(), 2u);
    EXPECT_EQ(s.counter_parts[0][0] + s.counter_parts[0][1], s.counters[0])
        << "parts sum to the transparent total";
  }
  const Sample& last = run.samples.back();
  EXPECT_GT(last.counter_parts[0][0], 0.0)
      << "master worker is pinned to a P core";
  EXPECT_EQ(last.counter_parts[0][1], 0.0)
      << "no E-core work on a P-only run";
}

TEST(Monitor, MarkedPhasesProduceRegionTables) {
  // mark_hpl_phases brackets the whole run plus every factor/update
  // phase on the master worker with the marker API; the result carries
  // a per-region table of entries, wall time and counter totals.
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(machine, config);
  MonitorConfig monitor;
  monitor.sample_events = {"PAPI_TOT_INS"};
  monitor.mark_hpl_phases = true;
  monitor.use_rdpmc = true;  // the marker hot path the feature targets
  const std::vector<int> cpus = machine.primary_threads_of_type(0);
  const RunResult run = run_monitored_hpl(
      kernel, workload::HplConfig::openblas(13824, 192), cpus, monitor);

  ASSERT_FALSE(run.regions.empty());
  const auto find = [&run](std::string_view name) -> const RegionReport* {
    for (const RegionReport& r : run.regions) {
      if (r.name == name) return &r;
    }
    return nullptr;
  };
  const RegionReport* hpl = find("hpl");
  const RegionReport* factor = find("factor");
  const RegionReport* update = find("update");
  ASSERT_NE(hpl, nullptr);
  ASSERT_NE(factor, nullptr);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(hpl->entries, 1u) << "the whole run is one region entry";
  EXPECT_GT(factor->entries, 0u);
  EXPECT_GT(update->entries, 0u);
  EXPECT_GT(hpl->time_s, 0.0);
  EXPECT_GE(hpl->time_s, factor->time_s) << "phases nest inside the run";
  ASSERT_EQ(hpl->totals.size(), 1u) << "one total per sample event";
  EXPECT_GT(hpl->totals[0], 0) << "master worker retired instructions";
  EXPECT_GE(hpl->totals[0], factor->totals[0] / 2)
      << "phase totals are bracketed by the run total";
}

TEST(Monitor, AverageRunsMergesRegions) {
  RunResult a;
  a.regions.push_back(RegionReport{"hpl", 1, 2.0, {100}});
  a.regions.push_back(RegionReport{"factor", 4, 1.0, {40}});
  RunResult b;
  b.regions.push_back(RegionReport{"hpl", 1, 4.0, {200}});
  b.regions.push_back(RegionReport{"factor", 6, 3.0, {60}});
  const RunResult avg = average_runs({a, b});
  ASSERT_EQ(avg.regions.size(), 2u);
  EXPECT_EQ(avg.regions[0].name, "hpl");
  EXPECT_EQ(avg.regions[0].entries, 1u);
  EXPECT_DOUBLE_EQ(avg.regions[0].time_s, 3.0);
  ASSERT_EQ(avg.regions[0].totals.size(), 1u);
  EXPECT_EQ(avg.regions[0].totals[0], 150);
  EXPECT_EQ(avg.regions[1].name, "factor");
  EXPECT_EQ(avg.regions[1].entries, 5u);
  EXPECT_DOUBLE_EQ(avg.regions[1].time_s, 2.0);
  EXPECT_EQ(avg.regions[1].totals[0], 50);
}

TEST(Monitor, RepeatedMonitoredRunsAreConsistent) {
  // Two repetitions of the same short HPL run with a settle in between
  // (the paper's N-run protocol) should agree closely on Gflops.
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(machine, config);
  MonitorConfig monitor;
  const std::vector<int> cpus = machine.primary_threads_of_type(0);
  std::vector<RunResult> runs;
  for (int rep = 0; rep < 2; ++rep) {
    runs.push_back(run_monitored_hpl(
        kernel, workload::HplConfig::openblas(13824, 192), cpus, monitor));
  }
  EXPECT_NEAR(runs[0].gflops, runs[1].gflops, 0.1 * runs[0].gflops);
  const RunResult avg = average_runs(runs);
  EXPECT_GT(avg.gflops, 0.0);
  EXPECT_GE(avg.samples.size(), 2u);
}

}  // namespace
}  // namespace hetpapi::telemetry
