// The kernel-side PMU registry: per-machine PMU sets, type-id
// allocation, counter properties, and fixed-counter classification.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/pmu.hpp"

namespace hetpapi::simkernel {
namespace {

TEST(PmuRegistry, RaptorLakeExportsExpectedPmuSet) {
  const auto registry = PmuRegistry::build(cpumodel::raptor_lake_i7_13700());
  ASSERT_EQ(registry.all().size(), 5u);  // sw + 2 core + rapl + imc
  const PmuDesc* core = registry.find_by_name("cpu_core");
  const PmuDesc* atom = registry.find_by_name("cpu_atom");
  ASSERT_NE(core, nullptr);
  ASSERT_NE(atom, nullptr);
  EXPECT_EQ(core->type_id, kPerfTypeRaw)
      << "cpu_core inherits the legacy type 4 slot on hybrid x86";
  EXPECT_GE(atom->type_id, kPerfTypeFirstDynamic);
  EXPECT_NE(core->type_id, atom->type_id);
  EXPECT_EQ(core->num_gp_counters, 8);
  EXPECT_EQ(atom->num_gp_counters, 6);
  EXPECT_EQ(registry.core_pmus().size(), 2u);
}

TEST(PmuRegistry, TypeIdsAreUniqueAcrossAllPmus) {
  for (const auto& machine :
       {cpumodel::raptor_lake_i7_13700(), cpumodel::orangepi800_rk3399(),
        cpumodel::homogeneous_xeon(), cpumodel::arm_three_type(),
        cpumodel::sierra_forest_e_only(),
        cpumodel::granite_rapids_p_only()}) {
    const auto registry = PmuRegistry::build(machine);
    std::set<std::uint32_t> ids;
    for (const PmuDesc& pmu : registry.all()) {
      EXPECT_TRUE(ids.insert(pmu.type_id).second)
          << machine.name << ": duplicate type id " << pmu.type_id;
    }
  }
}

TEST(PmuRegistry, CorePmuForCpuFollowsTopology) {
  const auto registry = PmuRegistry::build(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(registry.core_pmu_for_cpu(0)->sysfs_name, "cpu_core");
  EXPECT_EQ(registry.core_pmu_for_cpu(15)->sysfs_name, "cpu_core");
  EXPECT_EQ(registry.core_pmu_for_cpu(16)->sysfs_name, "cpu_atom");
  EXPECT_EQ(registry.core_pmu_for_cpu(23)->sysfs_name, "cpu_atom");
  EXPECT_EQ(registry.core_pmu_for_cpu(99), nullptr);
}

TEST(PmuRegistry, FixedCounterClassification) {
  const auto registry = PmuRegistry::build(cpumodel::raptor_lake_i7_13700());
  const PmuDesc* core = registry.find_by_name("cpu_core");
  const PmuDesc* atom = registry.find_by_name("cpu_atom");
  // Instructions/cycles/ref-cycles ride fixed counters on both.
  for (const CountKind kind :
       {CountKind::kInstructions, CountKind::kCycles, CountKind::kRefCycles}) {
    EXPECT_TRUE(core->is_fixed(kind));
    EXPECT_TRUE(atom->is_fixed(kind));
  }
  // The topdown slots fixed counter exists only on the P core (4 fixed).
  EXPECT_TRUE(core->is_fixed(CountKind::kTopdownSlots));
  EXPECT_FALSE(atom->is_fixed(CountKind::kTopdownSlots));
  // GP-only kinds are never fixed.
  EXPECT_FALSE(core->is_fixed(CountKind::kLlcMisses));
}

TEST(PmuRegistry, TopdownSupportIsPCoreOnly) {
  const auto registry = PmuRegistry::build(cpumodel::raptor_lake_i7_13700());
  EXPECT_TRUE(registry.find_by_name("cpu_core")->supports(
      CountKind::kTopdownSlots));
  EXPECT_FALSE(registry.find_by_name("cpu_atom")->supports(
      CountKind::kTopdownSlots));
  // ARM cores never get Intel topdown.
  const auto arm = PmuRegistry::build(cpumodel::orangepi800_rk3399());
  for (const PmuDesc* pmu : arm.core_pmus()) {
    EXPECT_FALSE(pmu->supports(CountKind::kTopdownSlots));
  }
}

TEST(PmuRegistry, NoRaplOrUncoreWithoutRaplSupport) {
  const auto arm = PmuRegistry::build(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(arm.find_by_name("power"), nullptr);
  EXPECT_EQ(arm.find_by_name("uncore_imc_0"), nullptr);
  const auto intel = PmuRegistry::build(cpumodel::raptor_lake_i7_13700());
  EXPECT_NE(intel.find_by_name("power"), nullptr);
  EXPECT_TRUE(intel.find_by_name("power")->supports(CountKind::kEnergyDramUj));
}

TEST(PmuRegistry, HomogeneousMachineKeepsTraditionalLayout) {
  const auto registry = PmuRegistry::build(cpumodel::homogeneous_xeon());
  const PmuDesc* cpu = registry.find_by_name("cpu");
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->type_id, kPerfTypeRaw);
  EXPECT_EQ(registry.core_pmus().size(), 1u);
}

}  // namespace
}  // namespace hetpapi::simkernel
