// Machine presets, spec validation, and the power/thermal/DVFS models'
// physical invariants (energy conservation, RAPL capping, thermal
// equilibria, throttle hysteresis).
#include <gtest/gtest.h>

#include <cmath>

#include "cpumodel/dvfs.hpp"
#include "cpumodel/machine.hpp"
#include "cpumodel/power.hpp"
#include "cpumodel/thermal.hpp"

namespace hetpapi::cpumodel {
namespace {

// --- presets -----------------------------------------------------------------

class PresetTest : public ::testing::TestWithParam<MachineSpec> {};

TEST_P(PresetTest, Validates) {
  EXPECT_TRUE(GetParam().validate().is_ok())
      << GetParam().validate().to_string();
}

TEST_P(PresetTest, CoreTypePartitionCoversAllCpus) {
  const MachineSpec& m = GetParam();
  std::size_t covered = 0;
  for (std::size_t t = 0; t < m.core_types.size(); ++t) {
    covered += m.cpus_of_type(static_cast<CoreTypeId>(t)).size();
  }
  EXPECT_EQ(covered, static_cast<std::size_t>(m.num_cpus()));
}

INSTANTIATE_TEST_SUITE_P(AllMachines, PresetTest,
                         ::testing::Values(raptor_lake_i7_13700(),
                                           orangepi800_rk3399(),
                                           homogeneous_xeon(),
                                           arm_three_type()),
                         [](const auto& param_info) { return param_info.param.name; });

TEST(RaptorLakePreset, MatchesTableOne) {
  const MachineSpec m = raptor_lake_i7_13700();
  EXPECT_EQ(m.num_cpus(), 24);
  EXPECT_TRUE(m.is_hybrid());
  EXPECT_EQ(m.primary_threads_of_type(0).size(), 8u);  // 8 P cores
  EXPECT_EQ(m.cpus_of_type(0).size(), 16u);            // 16 P threads
  EXPECT_EQ(m.cpus_of_type(1).size(), 8u);             // 8 E cores
  EXPECT_DOUBLE_EQ(m.rapl.pl1.value, 65.0);
  EXPECT_DOUBLE_EQ(m.rapl.pl2.value, 219.0);
  // P/E share family/model/stepping — the detection pitfall of §IV-B.
  EXPECT_EQ(m.core_types[0].ident.model, m.core_types[1].ident.model);
  EXPECT_NE(m.core_types[0].ident.intel_kind,
            m.core_types[1].ident.intel_kind);
}

TEST(OrangePiPreset, MatchesTableFour) {
  const MachineSpec m = orangepi800_rk3399();
  EXPECT_EQ(m.num_cpus(), 6);
  EXPECT_EQ(m.cpus_of_type(0), (std::vector<int>{4, 5}));    // A72 big
  EXPECT_EQ(m.cpus_of_type(1), (std::vector<int>{0, 1, 2, 3}));  // A53
  EXPECT_FALSE(m.rapl.present);
  EXPECT_TRUE(m.exposes_cpu_capacity);
  EXPECT_NE(m.core_types[0].ident.arm_part, m.core_types[1].ident.arm_part);
}

TEST(MachineValidate, RejectsBrokenSpecs) {
  MachineSpec m = homogeneous_xeon(2);
  m.cpus[1].type = 7;  // out of range
  EXPECT_FALSE(m.validate().is_ok());

  m = homogeneous_xeon(2);
  m.cpus[1].cpu = 0;  // duplicate id
  EXPECT_FALSE(m.validate().is_ok());

  m = homogeneous_xeon(2);
  m.cpus[1].cpu = 5;  // hole in numbering
  EXPECT_FALSE(m.validate().is_ok());

  m = homogeneous_xeon(2);
  m.core_types[0].dvfs.freq_max = MegaHertz{100};
  m.core_types[0].dvfs.freq_min = MegaHertz{1000};
  EXPECT_FALSE(m.validate().is_ok());

  m = homogeneous_xeon(2);
  m.core_types.clear();
  EXPECT_FALSE(m.validate().is_ok());
}

// --- power -------------------------------------------------------------------

TEST(CpuPower, MonotonicInFrequencyUtilAndActivity) {
  const CoreTypeSpec type = raptor_lake_i7_13700().core_types[0];
  const Watts base = cpu_power(type, MegaHertz{2000}, 0.5, 0.8);
  EXPECT_GT(cpu_power(type, MegaHertz{3000}, 0.5, 0.8).value, base.value);
  EXPECT_GT(cpu_power(type, MegaHertz{2000}, 0.9, 0.8).value, base.value);
  EXPECT_GT(cpu_power(type, MegaHertz{2000}, 0.5, 1.0).value, base.value);
  // Idle core burns only leakage.
  EXPECT_DOUBLE_EQ(cpu_power(type, MegaHertz{800}, 0.0, 0.0).value,
                   type.power.leakage_w);
}

TEST(RaplModel, AllowsBurstThenSettlesToPl1) {
  RaplModel rapl(raptor_lake_i7_13700().rapl);
  // Cold start: nearly the PL2 budget is available.
  EXPECT_GT(rapl.allowed_power().value, 150.0);
  // Run hot for two long-window time constants.
  for (int i = 0; i < 56000; ++i) {
    rapl.step(std::chrono::milliseconds(1),
              Watts{std::min(rapl.allowed_power().value, 180.0)});
  }
  EXPECT_NEAR(rapl.allowed_power().value, 65.0, 4.0)
      << "long-term average must converge to PL1";
  EXPECT_NEAR(rapl.long_window_average().value, 65.0, 5.0);
}

TEST(RaplModel, EnergyCounterIntegratesAndWraps) {
  RaplSpec spec;
  RaplModel rapl(spec);
  rapl.step(std::chrono::seconds(10), Watts{50.0});
  EXPECT_NEAR(rapl.total_energy().value, 500.0, 1e-6);
  EXPECT_EQ(rapl.energy_status_uj(), 500'000'000u);
  // Push past the 32-bit microjoule wrap (4294.97 J).
  rapl.step(std::chrono::seconds(100), Watts{50.0});
  EXPECT_NEAR(rapl.total_energy().value, 5500.0, 1e-6);
  EXPECT_EQ(rapl.energy_status_uj(),
            static_cast<std::uint32_t>(5'500'000'000ULL & 0xFFFFFFFFULL));
}

TEST(RaplModel, AbsentRaplImposesNoLimit) {
  RaplSpec spec;
  spec.present = false;
  RaplModel rapl(spec);
  EXPECT_TRUE(std::isinf(rapl.allowed_power().value));
}

TEST(BoardPowerMeter, AddsIdleAndPsuLoss) {
  const BoardPowerMeter meter(Watts{3.0}, 0.8);
  EXPECT_NEAR(meter.reading(Watts{5.0}).value, 10.0, 1e-9);
}

// --- thermal ------------------------------------------------------------------

TEST(ThermalNode, ApproachesEquilibrium) {
  ThermalSpec spec;
  spec.ambient = Celsius{25.0};
  spec.idle_settle = Celsius{25.0};
  spec.r_thermal_c_per_w = 0.5;
  spec.c_thermal_j_per_c = 100.0;
  ThermalNode node(spec);
  const Celsius eq = node.equilibrium(Watts{65.0});
  EXPECT_DOUBLE_EQ(eq.value, 25.0 + 65.0 * 0.5);
  for (int i = 0; i < 600'000; ++i) {
    node.step(std::chrono::milliseconds(1), Watts{65.0});
  }
  EXPECT_NEAR(node.temperature().value, eq.value, 0.5);
}

TEST(ThermalNode, CoolsToAmbientWithoutPower) {
  ThermalSpec spec;
  ThermalNode node(spec);
  node.set_temperature(Celsius{80.0});
  for (int i = 0; i < 2'000'000; ++i) {
    node.step(std::chrono::milliseconds(1), Watts{0.0});
  }
  EXPECT_NEAR(node.temperature().value, spec.ambient.value, 1.0);
}

TEST(ThermalThrottle, EngagesAboveTripAndRecoversWithHysteresis) {
  ThermalSpec spec;
  spec.t_junction_max = Celsius{85.0};
  spec.hysteresis_c = 5.0;
  ThermalThrottle throttle(spec);
  EXPECT_FALSE(throttle.throttling());
  // Hot for 2 seconds: level drops.
  for (int i = 0; i < 2000; ++i) {
    throttle.update(std::chrono::milliseconds(1), Celsius{90.0});
  }
  EXPECT_TRUE(throttle.throttling());
  EXPECT_LT(throttle.level(), 0.5);
  // Within the hysteresis band: level holds.
  const double held = throttle.level();
  for (int i = 0; i < 1000; ++i) {
    throttle.update(std::chrono::milliseconds(1), Celsius{82.0});
  }
  EXPECT_DOUBLE_EQ(throttle.level(), held);
  // Cool: level recovers to 1.
  for (int i = 0; i < 10'000; ++i) {
    throttle.update(std::chrono::milliseconds(1), Celsius{60.0});
  }
  EXPECT_DOUBLE_EQ(throttle.level(), 1.0);
  EXPECT_GT(throttle.throttled_time().count(), 0);
}

// --- governor -----------------------------------------------------------------

TEST(PackageGovernor, IdleMachineSitsAtMinFrequencyAndLowPower) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  std::vector<CpuLoad> idle(static_cast<std::size_t>(m.num_cpus()));
  for (int i = 0; i < 1000; ++i) {
    governor.step(std::chrono::milliseconds(1), idle);
  }
  EXPECT_DOUBLE_EQ(governor.frequency(0).value,
                   m.core_types[0].dvfs.freq_min.value);
  EXPECT_LT(governor.package_power().value, 25.0);
}

TEST(PackageGovernor, FullLoadSettlesNearPl1) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  std::vector<CpuLoad> full(static_cast<std::size_t>(m.num_cpus()),
                            CpuLoad{1.0, 1.0});
  for (int i = 0; i < 120'000; ++i) {
    governor.step(std::chrono::milliseconds(1), full);
  }
  EXPECT_NEAR(governor.package_power().value, 65.0, 6.0);
  // Both types still above their minimum but below single-core turbo.
  EXPECT_GT(governor.frequency(0).value, 1500.0);
  EXPECT_LT(governor.frequency(0).value, 4300.0);
  EXPECT_GT(governor.frequency(16).value, 1200.0);
}

TEST(PackageGovernor, SingleBusyCoreMayUseSingleCoreTurbo) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  std::vector<CpuLoad> loads(static_cast<std::size_t>(m.num_cpus()));
  loads[0] = CpuLoad{1.0, 0.9};
  for (int i = 0; i < 2000; ++i) {
    governor.step(std::chrono::milliseconds(1), loads);
  }
  // One busy core easily fits the PL2 budget: frequency near fmax 5.1.
  EXPECT_GT(governor.frequency(0).value, 4500.0);
}

TEST(PackageGovernor, MultiCoreTurboCapBindsWhenManyCoresBusy) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  // All 8 E-cores busy, P idle: plenty of power budget, so the binding
  // limit is the multi-core turbo cap (3.5 GHz), not RAPL.
  std::vector<CpuLoad> loads(static_cast<std::size_t>(m.num_cpus()));
  for (int cpu = 16; cpu < 24; ++cpu) {
    loads[static_cast<std::size_t>(cpu)] = CpuLoad{1.0, 1.0};
  }
  for (int i = 0; i < 2000; ++i) {
    governor.step(std::chrono::milliseconds(1), loads);
  }
  EXPECT_LT(governor.frequency(16).value, 3700.0);
  EXPECT_GT(governor.frequency(16).value, 3200.0);
}

TEST(PackageGovernor, OrangePiBigClusterThermallyThrottles) {
  const MachineSpec m = orangepi800_rk3399();
  PackageGovernor governor(m);
  std::vector<CpuLoad> loads(static_cast<std::size_t>(m.num_cpus()),
                             CpuLoad{1.0, 1.0});
  // Early: bigs at max.
  for (int i = 0; i < 3000; ++i) {
    governor.step(std::chrono::milliseconds(1), loads);
  }
  const double early_big = governor.frequency(4).value;
  EXPECT_GT(early_big, 1600.0) << "bigs ramp to ~1.8 GHz first";
  // Two minutes in: throttled well below max (Figure 3).
  for (int i = 0; i < 120'000; ++i) {
    governor.step(std::chrono::milliseconds(1), loads);
  }
  EXPECT_TRUE(governor.cluster_throttling(1));
  EXPECT_LT(governor.frequency(4).value, 1100.0);
  // LITTLE cluster keeps (close to) its max.
  EXPECT_GT(governor.frequency(0).value, 1300.0);
}

TEST(PackageGovernor, ResetRestoresColdState) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  std::vector<CpuLoad> full(static_cast<std::size_t>(m.num_cpus()),
                            CpuLoad{1.0, 1.0});
  for (int i = 0; i < 50'000; ++i) {
    governor.step(std::chrono::milliseconds(1), full);
  }
  governor.reset();
  EXPECT_DOUBLE_EQ(governor.package_temperature().value,
                   m.thermal.idle_settle.value);
  EXPECT_DOUBLE_EQ(governor.rapl().total_energy().value, 0.0);
  EXPECT_GT(governor.rapl().allowed_power().value, 150.0);
}

// Property: package energy equals the integral of reported power.
TEST(PackageGovernor, EnergyEqualsIntegralOfPower) {
  const MachineSpec m = raptor_lake_i7_13700();
  PackageGovernor governor(m);
  std::vector<CpuLoad> loads(static_cast<std::size_t>(m.num_cpus()),
                             CpuLoad{0.7, 0.8});
  double integral = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    governor.step(std::chrono::milliseconds(1), loads);
    integral += governor.package_power().value * 1e-3;
  }
  EXPECT_NEAR(governor.rapl().total_energy().value, integral,
              0.01 * integral);
}

}  // namespace
}  // namespace hetpapi::cpumodel
