// Sampling / overflow support (PAPI_overflow equivalent): period
// arithmetic at the kernel layer, delivery through the library, and the
// hybrid twist — a derived preset samples on every core PMU and reports
// which one fired.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr sampling_attr(std::uint32_t type, CountKind kind,
                            std::uint64_t period) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(kind);
  attr.sample_period = period;
  return attr;
}

TEST(PerfOverflow, FiresOncePerPeriod) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(
      sampling_attr(pmu->type_id, CountKind::kInstructions, 1'000'000), tid,
      -1, -1);
  ASSERT_TRUE(fd.has_value());
  std::uint64_t delivered = 0;
  ASSERT_TRUE(kernel
                  .perf_set_overflow_handler(
                      *fd,
                      [&](const simkernel::PerfSubsystem::OverflowInfo& info) {
                        delivered += info.overflows;
                        EXPECT_EQ(info.fd, *fd);
                        EXPECT_EQ(info.core_type, 0);  // P core
                      })
                  .is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  EXPECT_EQ(*kernel.perf_overflow_count(*fd), 10u)
      << "10M instructions / 1M period";
  EXPECT_EQ(delivered, 10u);
}

TEST(PerfOverflow, HandlerRequiresSamplingMode) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  PerfEventAttr counting;
  counting.type = pmu->type_id;
  counting.config = static_cast<std::uint64_t>(CountKind::kInstructions);
  auto fd = kernel.perf_event_open(counting, tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  const Status status = kernel.perf_set_overflow_handler(
      *fd, [](const simkernel::PerfSubsystem::OverflowInfo&) {});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(PerfOverflow, ResetRearmsThePeriod) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 100'000'000'000ULL),
      CpuSet::of({0}));
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(
      sampling_attr(pmu->type_id, CountKind::kInstructions, 5'000'000), tid,
      -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_for(std::chrono::milliseconds(5));
  const std::uint64_t before = *kernel.perf_overflow_count(*fd);
  EXPECT_GT(before, 0u);
  ASSERT_TRUE(kernel.perf_ioctl(*fd, simkernel::PerfIoctl::kReset).is_ok());
  kernel.run_for(std::chrono::milliseconds(5));
  // Overflows keep accumulating at roughly the same rate after reset
  // (the count restarts at zero but the period is re-armed).
  const std::uint64_t after = *kernel.perf_overflow_count(*fd);
  EXPECT_GT(after, before);
}

TEST(PapiOverflow, DerivedPresetSamplesOnBothPmusAndNamesTheSource) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 100.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 2'000'000'000ULL),
      CpuSet::all(kernel.machine().num_cpus()));
  backend.set_default_target(tid);

  auto lib = Library::init(&backend);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());

  std::uint64_t p_samples = 0;
  std::uint64_t e_samples = 0;
  ASSERT_TRUE((*lib)
                  ->set_overflow(*set, 0, 10'000'000,
                                 [&](const Library::OverflowEvent& event) {
                                   EXPECT_EQ(event.user_event_index, 0);
                                   if (event.native_name ==
                                       "adl_glc::INST_RETIRED:ANY") {
                                     p_samples += event.periods;
                                   } else if (event.native_name ==
                                              "adl_grt::INST_RETIRED:ANY") {
                                     e_samples += event.periods;
                                   } else {
                                     ADD_FAILURE() << event.native_name;
                                   }
                                 })
                  .is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(60));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());

  EXPECT_GT(p_samples, 0u) << "samples attributed to the P-core event";
  EXPECT_GT(e_samples, 0u) << "samples attributed to the E-core event";
  // Sample count ~ total instructions / threshold.
  const auto expected =
      static_cast<std::uint64_t>((*values)[0]) / 10'000'000;
  EXPECT_NEAR(static_cast<double>(p_samples + e_samples),
              static_cast<double>(expected), 3.0);
}

TEST(PapiOverflow, ErrorsAreReported) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());

  EXPECT_EQ((*lib)->set_overflow(99, 0, 1000, nullptr).code(),
            StatusCode::kNoEventSet);
  EXPECT_EQ((*lib)->set_overflow(*set, 5, 1000, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*lib)->set_overflow(*set, 0, 0, nullptr).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  EXPECT_EQ((*lib)->set_overflow(*set, 0, 1000, nullptr).code(),
            StatusCode::kAlreadyRunning);
}

TEST(PapiOverflow, CountingEventsInSameSetAreUnaffected) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);
  auto lib = Library::init(&backend);
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  int samples = 0;
  ASSERT_TRUE((*lib)
                  ->set_overflow(*set, 0, 10'000'000,
                                 [&](const Library::OverflowEvent&) {
                                   ++samples;
                                 })
                  .is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_until_idle(std::chrono::seconds(10));
  auto values = (*lib)->stop(*set);
  ASSERT_TRUE(values.has_value());
  EXPECT_GE((*values)[0], 50'000'000);  // sampling event still counts
  EXPECT_GT((*values)[1], 0);           // sibling unaffected
  EXPECT_EQ(samples, 5);
}

}  // namespace
}  // namespace hetpapi
