// CPU-attached EventSets (`perf stat -C` / PAPI cpu granularity):
// counting everything on a cpu regardless of thread, across core types.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

class CpuAttachTest : public ::testing::Test {
 protected:
  CpuAttachTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {
    LibraryConfig config;
    config.call_overhead_instructions = 0;
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value());
    lib_ = std::move(*lib);
  }

  SimKernel kernel_;
  SimBackend backend_;
  std::unique_ptr<Library> lib_;
};

TEST_F(CpuAttachTest, CountsEveryThreadOnTheCpu) {
  // Two threads time-sharing cpu 0: a cpu-attached set sees both.
  PhaseSpec phase;
  const Tid a = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 30'000'000), CpuSet::of({0}));
  const Tid b = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 50'000'000), CpuSet::of({0}));
  auto set = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach_cpu(*set, 0).is_ok());
  ASSERT_TRUE(lib_->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(lib_->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(30));
  auto values = lib_->stop(*set);
  ASSERT_TRUE(values.has_value());
  const auto total = kernel_.ground_truth(a)->total().instructions +
                     kernel_.ground_truth(b)->total().instructions;
  EXPECT_EQ(static_cast<std::uint64_t>((*values)[0]), total);
  EXPECT_EQ(total, 80'000'000u);
}

TEST_F(CpuAttachTest, ForeignCoreTypeEventIsRejected) {
  auto set = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach_cpu(*set, 16).is_ok());  // an E-core cpu
  const Status status = lib_->add_event(*set, "adl_glc::INST_RETIRED:ANY");
  ASSERT_FALSE(status.is_ok()) << "cpu_core events cannot bind to cpu 16";
  EXPECT_TRUE(lib_->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());
}

TEST_F(CpuAttachTest, AttachCpuValidatesArguments) {
  auto set = lib_->create_eventset();
  EXPECT_EQ(lib_->attach_cpu(*set, 99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(lib_->attach_cpu(*set, -1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(lib_->attach_cpu(123, 0).code(), StatusCode::kNoEventSet);
}

TEST_F(CpuAttachTest, ManyCpuAttachedSetsRunConcurrently) {
  // A per-cpu observer set on every logical cpu — the Table III
  // methodology as a first-class library feature.
  const auto& machine = kernel_.machine();
  std::vector<int> sets;
  for (int cpu = 0; cpu < machine.num_cpus(); ++cpu) {
    auto set = lib_->create_eventset();
    ASSERT_TRUE(lib_->attach_cpu(*set, cpu).is_ok());
    const char* event = machine.cpus[static_cast<std::size_t>(cpu)].type == 0
                            ? "adl_glc::INST_RETIRED:ANY"
                            : "adl_grt::INST_RETIRED:ANY";
    ASSERT_TRUE(lib_->add_event(*set, event).is_ok());
    ASSERT_TRUE(lib_->start(*set).is_ok()) << "cpu " << cpu;
    sets.push_back(*set);
  }

  // A migrating workload.
  SimKernel::Config ignored;
  PhaseSpec phase;
  const Tid tid = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 500'000'000),
      CpuSet::all(machine.num_cpus()));
  kernel_.run_until_idle(std::chrono::seconds(60));

  std::uint64_t sum = 0;
  for (const int set : sets) {
    auto values = lib_->stop(set);
    ASSERT_TRUE(values.has_value());
    sum += static_cast<std::uint64_t>((*values)[0]);
  }
  EXPECT_EQ(sum, kernel_.ground_truth(tid)->total().instructions)
      << "per-cpu observers tile the machine: totals must agree";
}

TEST_F(CpuAttachTest, SwitchingBackToThreadAttachWorks) {
  PhaseSpec phase;
  const Tid tid = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({2}));
  auto set = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach_cpu(*set, 0).is_ok());
  ASSERT_TRUE(lib_->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  // Re-target to the thread: the event now follows the thread on cpu 2.
  ASSERT_TRUE(lib_->attach(*set, tid).is_ok());
  ASSERT_TRUE(lib_->start(*set).is_ok());
  kernel_.run_until_idle(std::chrono::seconds(10));
  auto values = lib_->stop(*set);
  EXPECT_EQ((*values)[0], 10'000'000);
}

}  // namespace
}  // namespace hetpapi
