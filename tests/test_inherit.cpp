// attr.inherit / process-group counting: how `perf stat ./hpl` sees a
// whole multithreaded run through events opened on the group leader.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/hpl.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr inherit_attr(std::uint32_t type, CountKind kind) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(kind);
  attr.inherit = true;
  return attr;
}

TEST(Inherit, LeaderEventCountsWholeGroup) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid leader = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({0}));
  auto child_a = kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 20'000'000), CpuSet::of({2}),
      leader);
  auto child_b = kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 30'000'000), CpuSet::of({4}),
      leader);
  ASSERT_TRUE(child_a.has_value());
  ASSERT_TRUE(child_b.has_value());

  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(
      inherit_attr(pmu->type_id, CountKind::kInstructions), leader, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(30));
  EXPECT_EQ(kernel.perf_read(*fd)->value, 60'000'000u)
      << "leader + both children";
}

TEST(Inherit, NonInheritEventSeesOnlyTheLeader) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid leader = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 10'000'000), CpuSet::of({0}));
  (void)kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 20'000'000), CpuSet::of({2}),
      leader);
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  PerfEventAttr attr;
  attr.type = pmu->type_id;
  attr.config = static_cast<std::uint64_t>(CountKind::kInstructions);
  auto fd = kernel.perf_event_open(attr, leader, -1, -1);
  ASSERT_TRUE(fd.has_value());
  kernel.run_until_idle(std::chrono::seconds(30));
  EXPECT_EQ(kernel.perf_read(*fd)->value, 10'000'000u);
}

TEST(Inherit, GroupMembershipIsTransitive) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid leader = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  auto child = kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({2}),
      leader);
  // Spawning off the child still lands in the leader's group.
  auto grandchild = kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({4}),
      *child);
  ASSERT_TRUE(grandchild.has_value());
  const auto* pmu = kernel.pmus().find_by_name("cpu_core");
  auto fd = kernel.perf_event_open(
      inherit_attr(pmu->type_id, CountKind::kInstructions), leader, -1, -1);
  kernel.run_until_idle(std::chrono::seconds(30));
  EXPECT_EQ(kernel.perf_read(*fd)->value, 3'000'000u);
}

TEST(Inherit, SpawnInGroupValidatesLeader) {
  SimKernel kernel(cpumodel::homogeneous_xeon(2));
  PhaseSpec phase;
  auto bad = kernel.spawn_in_group(
      std::make_shared<FixedWorkProgram>(phase, 1), CpuSet::of({0}), 42);
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Inherit, PerfStatStyleMeasurementOfWholeHplRun) {
  // The paper's Table III methodology, end to end: measure a whole
  // multithreaded HPL run with one inherited event per core PMU (what
  // `perf stat -e ...` does when launching the binary).
  const auto machine = cpumodel::raptor_lake_i7_13700();
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  SimKernel kernel(machine, config);

  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const auto e_cpus = machine.cpus_of_type(1);
  cpus.insert(cpus.end(), e_cpus.begin(), e_cpus.end());
  workload::HplSimulation hpl(workload::HplConfig::openblas(9216, 192),
                              static_cast<int>(cpus.size()));
  // Worker 0 is the "process"; the rest join its group, as OpenMP
  // workers join the main thread's.
  const Tid leader =
      kernel.spawn(hpl.make_worker(0), CpuSet::of({cpus[0]}));
  std::vector<Tid> all_tids{leader};
  for (std::size_t i = 1; i < cpus.size(); ++i) {
    all_tids.push_back(*kernel.spawn_in_group(
        hpl.make_worker(static_cast<int>(i)), CpuSet::of({cpus[i]}),
        leader));
  }

  const auto* p_pmu = kernel.pmus().find_by_name("cpu_core");
  const auto* e_pmu = kernel.pmus().find_by_name("cpu_atom");
  auto p_fd = kernel.perf_event_open(
      inherit_attr(p_pmu->type_id, CountKind::kInstructions), leader, -1, -1);
  auto e_fd = kernel.perf_event_open(
      inherit_attr(e_pmu->type_id, CountKind::kInstructions), leader, -1, -1);
  ASSERT_TRUE(p_fd.has_value());
  ASSERT_TRUE(e_fd.has_value());

  kernel.run_until_idle(std::chrono::seconds(600));

  std::uint64_t p_truth = 0;
  std::uint64_t e_truth = 0;
  for (const Tid tid : all_tids) {
    p_truth += kernel.ground_truth(tid)->per_type[0].instructions;
    e_truth += kernel.ground_truth(tid)->per_type[1].instructions;
  }
  EXPECT_EQ(kernel.perf_read(*p_fd)->value, p_truth);
  EXPECT_EQ(kernel.perf_read(*e_fd)->value, e_truth);
  EXPECT_GT(p_truth, e_truth) << "Table III's P-heavy split";
}

}  // namespace
}  // namespace hetpapi
