// Property tests for the figures' physical claims, at reduced problem
// sizes: the telemetry of a monitored run must show the behaviours the
// paper's plots show, for every variant and machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "telemetry/monitor.hpp"
#include "workload/hpl.hpp"

namespace hetpapi {
namespace {

using simkernel::SimKernel;
using telemetry::MonitorConfig;
using telemetry::RunResult;
using telemetry::Sample;

SimKernel::Config fast_kernel() {
  SimKernel::Config config;
  config.tick = std::chrono::milliseconds(1);
  return config;
}

class RaptorFigureTest : public ::testing::TestWithParam<workload::HplVariant> {
 protected:
  RunResult run_all_core(int n) {
    const auto machine = cpumodel::raptor_lake_i7_13700();
    SimKernel kernel(machine, fast_kernel());
    std::vector<int> cpus = machine.primary_threads_of_type(0);
    const auto e = machine.cpus_of_type(1);
    cpus.insert(cpus.end(), e.begin(), e.end());
    const auto config = GetParam() == workload::HplVariant::kVendorDynamic
                            ? workload::HplConfig::intel(n, 192)
                            : workload::HplConfig::openblas(n, 192);
    return run_monitored_hpl(kernel, config, cpus, MonitorConfig{});
  }
};

TEST_P(RaptorFigureTest, PowerSpikesThenSettlesAtPl1NeverAbovePl2) {
  // Figure 2's claims: an initial burst above PL1, a steady state ON
  // PL1, and nothing above PL2.
  const RunResult run = run_all_core(43008);
  const double total_s =
      std::chrono::duration<double>(run.elapsed).count();
  double peak = 0.0;
  std::vector<double> steady;
  for (const Sample& sample : run.samples) {
    if (std::isnan(sample.package_power_w) || sample.t_seconds <= 1.0) {
      continue;
    }
    peak = std::max(peak, sample.package_power_w);
    ASSERT_LT(sample.package_power_w, 219.0 * 1.03)
        << "PL2 is a hard ceiling (t=" << sample.t_seconds << ")";
    if (sample.t_seconds > 0.5 * total_s && sample.t_seconds < total_s) {
      steady.push_back(sample.package_power_w);
    }
  }
  EXPECT_GT(peak, 80.0) << "the cold-window burst exceeds PL1";
  ASSERT_FALSE(steady.empty());
  double steady_avg = 0.0;
  for (double w : steady) steady_avg += w;
  steady_avg /= static_cast<double>(steady.size());
  EXPECT_NEAR(steady_avg, 65.0, 5.0) << "steady state rides PL1";
}

TEST_P(RaptorFigureTest, TemperatureStaysFarBelowTheJunctionLimit) {
  const RunResult run = run_all_core(30720);
  for (const Sample& sample : run.samples) {
    ASSERT_LT(sample.package_temp_c, 100.0);
  }
}

TEST_P(RaptorFigureTest, FrequenciesSpikeEarlyThenDrop) {
  // Figure 1's envelope: the early P-core frequency (burst) exceeds the
  // late steady frequency.
  const RunResult run = run_all_core(43008);
  const double total_s =
      std::chrono::duration<double>(run.elapsed).count();
  double early = 0.0;
  std::vector<double> late;
  for (const Sample& sample : run.samples) {
    if (sample.t_seconds < 1.0) continue;
    if (sample.t_seconds < 10.0) {
      early = std::max(early, sample.core_freq_mhz[0]);
    } else if (sample.t_seconds > 0.6 * total_s &&
               sample.t_seconds < total_s &&
               sample.core_freq_mhz[0] > 1000.0) {
      late.push_back(sample.core_freq_mhz[0]);
    }
  }
  ASSERT_FALSE(late.empty());
  std::sort(late.begin(), late.end());
  const double late_median = late[late.size() / 2];
  EXPECT_GT(early, late_median + 300.0)
      << "burst frequency clearly above the PL1 steady state";
}

INSTANTIATE_TEST_SUITE_P(
    BothVariants, RaptorFigureTest,
    ::testing::Values(workload::HplVariant::kReferenceStatic,
                      workload::HplVariant::kVendorDynamic),
    [](const auto& param_info) {
      return param_info.param == workload::HplVariant::kVendorDynamic
                 ? std::string("intel")
                 : std::string("openblas");
    });

TEST(OrangePiFigure, BigClusterThrottlesWhileLittleHolds) {
  // Figure 3's claims at reduced N: the big cores start at ~1.8 GHz,
  // throttle within a minute, and end far below max; the LITTLE cores
  // hold their max throughout.
  const auto machine = cpumodel::orangepi800_rk3399();
  SimKernel kernel(machine, fast_kernel());
  const RunResult run =
      run_monitored_hpl(kernel, workload::HplConfig::openblas(13312, 128),
                        {0, 1, 2, 3, 4, 5}, MonitorConfig{});
  double big_early = 0.0;
  std::vector<double> big_late;
  double little_min = 1e9;
  const double total_s =
      std::chrono::duration<double>(run.elapsed).count();
  for (const Sample& sample : run.samples) {
    if (sample.t_seconds < 1.0 || sample.t_seconds >= total_s) continue;
    big_early = std::max(big_early, sample.core_freq_mhz[4]);
    if (sample.t_seconds > 0.6 * total_s) {
      big_late.push_back(sample.core_freq_mhz[4]);
    }
    little_min = std::min(little_min, sample.core_freq_mhz[0]);
  }
  EXPECT_GT(big_early, 1700.0) << "big cores ramp to ~fmax first";
  ASSERT_FALSE(big_late.empty());
  std::sort(big_late.begin(), big_late.end());
  EXPECT_LT(big_late[big_late.size() / 2], 900.0)
      << "late-run big cores sit far below fmax";
  EXPECT_GT(little_min, 1300.0) << "LITTLE cores never throttle";
}

}  // namespace
}  // namespace hetpapi
