// The counter-service daemon, end to end over the deterministic
// loopback transport: wire-protocol round trips and malformed-input
// handling, session lifecycle, shared-subscription coalescing (the
// backend-reads-per-tick oracle), backpressure and idle-timeout drops,
// graceful shutdown with the fd ledger as leak oracle, byte-identical
// streams across encode thread counts, and a seeded chaos soak with the
// fault injector behind the daemon. The unix-socket transport gets a
// real-socket smoke test in the ServiceLinuxHost suite (runs in the
// linux-host CI shard).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/proto.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::FaultInjectingBackend;
using papi::FaultProfile;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;
using namespace hetpapi::service;

// --- wire protocol ---------------------------------------------------------

TEST(ServiceProto, ScalarAndStringRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  w.str_list({"a", "", "bc"});
  w.i64_list({-1, 0, 7});
  w.u8_list({1, 0, 1});
  Reader r(w.bytes());
  EXPECT_EQ(*r.u8(), 0xab);
  EXPECT_EQ(*r.u32(), 0xdeadbeefu);
  EXPECT_EQ(*r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(*r.i64(), -42);
  EXPECT_EQ(*r.f64(), 3.25);
  EXPECT_EQ(*r.str(), "hello");
  EXPECT_EQ(*r.str_list(), (std::vector<std::string>{"a", "", "bc"}));
  EXPECT_EQ(*r.i64_list(), (std::vector<long long>{-1, 0, 7}));
  EXPECT_EQ(*r.u8_list(), (std::vector<std::uint8_t>{1, 0, 1}));
  EXPECT_TRUE(r.exhausted());
}

TEST(ServiceProto, ReaderRejectsTruncationAndStaysPoisoned) {
  Writer w;
  w.str("truncate me");
  std::vector<std::uint8_t> bytes = w.take();
  bytes.resize(bytes.size() - 3);
  Reader r(bytes);
  auto s = r.str();
  ASSERT_FALSE(s.has_value());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
  // Poisoned: even a 1-byte read now fails although bytes remain.
  EXPECT_FALSE(r.u8().has_value());
}

TEST(ServiceProto, MessagesRoundTripThroughFrames) {
  Subscribe sub;
  sub.target_kind = TargetKind::kThread;
  sub.target = 17;
  sub.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  sub.period_ticks = 4;
  sub.qualified = 1;
  FrameReader reader;
  reader.feed(encode_frame(MsgType::kSubscribe, sub.encode()));
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, MsgType::kSubscribe);
  auto decoded = Subscribe::decode(*frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->target_kind, TargetKind::kThread);
  EXPECT_EQ(decoded->target, 17);
  EXPECT_EQ(decoded->events, sub.events);
  EXPECT_EQ(decoded->period_ticks, 4u);
  EXPECT_EQ(decoded->qualified, 1);

  WireSample sample;
  sample.subscription_id = 3;
  sample.tick = 99;
  sample.t_seconds = 1.5;
  sample.values = {100, 200};
  sample.degraded = {0, 1};
  sample.counters_ok = 1;
  sample.package_temp_c = 55.0;
  sample.package_power_w = 12.5;
  sample.parts = {{{"INST_RETIRED[P-core]", 60}, {"INST_RETIRED[E-core]", 40}},
                  {}};
  reader.feed(encode_frame(MsgType::kSample, sample.encode()));
  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  auto ds = WireSample::decode(*frame);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->subscription_id, 3u);
  EXPECT_EQ(ds->tick, 99u);
  EXPECT_EQ(ds->values, sample.values);
  EXPECT_EQ(ds->degraded, sample.degraded);
  EXPECT_EQ(ds->parts, sample.parts);

  WireError err;
  err.code = static_cast<std::int32_t>(StatusCode::kNoEventSet);
  err.in_reply_to = static_cast<std::uint8_t>(MsgType::kRead);
  err.message = "no such session";
  reader.feed(encode_frame(MsgType::kError, err.encode()));
  frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  auto de = WireError::decode(*frame);
  ASSERT_TRUE(de.has_value());
  EXPECT_EQ(de->to_status().code(), StatusCode::kNoEventSet);
  EXPECT_EQ(de->message, "no such session");
}

TEST(ServiceProto, SampleRoundTripsThreePerCoreTypeParts) {
  // The qualified frame is N-part by construction (length-prefixed
  // slots): three per-core-type constituents — a P/E/LP-E breakdown —
  // survive the wire byte-exactly, including an uncore slot with a
  // single unattributed part.
  WireSample sample;
  sample.subscription_id = 7;
  sample.tick = 12;
  sample.t_seconds = 0.25;
  sample.values = {300, 55};
  sample.degraded = {0, 0};
  sample.counters_ok = 1;
  sample.package_temp_c = 48.0;
  sample.package_power_w = 9.5;
  sample.parts = {{{"INST_RETIRED[intel_core]", 180},
                   {"INST_RETIRED[intel_atom]", 90},
                   {"INST_RETIRED[intel_lowpower]", 30}},
                  {{"UNC_M_CAS_COUNT:RD", 55}}};

  FrameReader reader;
  reader.feed(encode_frame(MsgType::kSample, sample.encode()));
  auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  auto decoded = WireSample::decode(*frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->parts, sample.parts);
  ASSERT_EQ(decoded->parts[0].size(), 3u);
  long long sum = 0;
  for (const auto& [label, value] : decoded->parts[0]) sum += value;
  EXPECT_EQ(sum, decoded->values[0]);

  // A truncated third part poisons the decode instead of silently
  // yielding a two-part frame.
  auto bytes = sample.encode();
  bytes.resize(bytes.size() - 5);
  Frame cut;
  cut.type = MsgType::kSample;
  cut.payload = std::move(bytes);
  EXPECT_FALSE(WireSample::decode(cut).has_value());
}

TEST(ServiceProto, DecodeRejectsTrailingBytes) {
  Start msg;
  msg.session_id = 5;
  std::vector<std::uint8_t> payload = msg.encode();
  payload.push_back(0x77);  // one stray byte after a complete message
  Frame frame;
  frame.type = MsgType::kStart;
  frame.payload = payload;
  auto decoded = Start::decode(frame);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceProto, FrameReaderReassemblesSingleByteChunks) {
  Hello hello;
  hello.client_name = "chunked";
  const auto f1 = encode_frame(MsgType::kHello, hello.encode());
  const auto f2 = encode_frame(MsgType::kGetStats, GetStats{}.encode());
  std::vector<std::uint8_t> stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());

  FrameReader reader;
  std::vector<Frame> frames;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    for (;;) {
      auto frame = reader.next();
      if (!frame) {
        EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
        break;
      }
      frames.push_back(*std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MsgType::kHello);
  EXPECT_EQ(frames[1].type, MsgType::kGetStats);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ServiceProto, FrameReaderPoisonsOnCorruptLengthPrefix) {
  FrameReader reader;
  // Length prefix of zero is impossible (the type byte is included).
  const std::uint8_t zero_len[4] = {0, 0, 0, 0};
  reader.feed(zero_len, sizeof(zero_len));
  auto frame = reader.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(reader.corrupt());

  FrameReader oversized;
  Writer w;
  w.u32(kMaxFrameBytes + 1);
  oversized.feed(w.bytes());
  frame = oversized.next();
  ASSERT_FALSE(frame.has_value());
  EXPECT_TRUE(oversized.corrupt());
}

// --- loopback daemon harness ----------------------------------------------

struct Harness {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> backend;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<Daemon> daemon;
  /// Three measured workload threads (the component lock allows one
  /// running perf EventSet per thread, so distinct subscription specs
  /// need distinct targets). tid aliases tids[0].
  std::vector<Tid> tids;
  Tid tid{};
  /// Machine model the daemon serves; set before init() to exercise
  /// other core-type counts (e.g. the three-PMU hybrids).
  cpumodel::MachineSpec machine = cpumodel::raptor_lake_i7_13700();

  Status init(DaemonConfig dconfig = {},
              LoopbackTransport::Config tconfig = {}) {
    kernel = std::make_unique<SimKernel>(machine);
    backend = std::make_unique<SimBackend>(kernel.get());
    transport = std::make_unique<LoopbackTransport>(tconfig);
    daemon = std::make_unique<Daemon>(kernel.get(), backend.get(),
                                      std::move(dconfig));
    PhaseSpec phase;
    for (int cpu = 0; cpu < 3; ++cpu) {
      tids.push_back(kernel->spawn(
          std::make_shared<FixedWorkProgram>(phase, 4'000'000'000ull),
          CpuSet::of({cpu})));
    }
    tid = tids[0];
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }

  Client connect(const std::string& name) {
    Client client(transport->connect());
    EXPECT_TRUE(client.hello(name).is_ok()) << name;
    return client;
  }

  /// Advance simulated time, then run one daemon sampling tick.
  void advance_and_tick(int ms = 10) {
    kernel->run_for(std::chrono::milliseconds(ms));
    daemon->tick();
  }
};

TEST(ServiceDaemon, HandshakeThenSessionLifecycle) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("lifecycle");

  auto session = client.open_session(TargetKind::kThread, h.tid);
  ASSERT_TRUE(session.has_value()) << session.status().message();
  auto ack = client.add_events(*session, {"papi_tot_ins", "PAPI_TOT_CYC"});
  ASSERT_TRUE(ack.has_value()) << ack.status().message();
  // The daemon canonicalizes spellings on the way in.
  ASSERT_EQ(ack->canonical_names.size(), 2u);
  EXPECT_EQ(ack->canonical_names[0], "PAPI_TOT_INS");
  EXPECT_EQ(ack->canonical_names[1], "PAPI_TOT_CYC");

  ASSERT_TRUE(client.start(*session).is_ok());
  h.kernel->run_for(std::chrono::milliseconds(50));
  auto reading = client.read(*session);
  ASSERT_TRUE(reading.has_value()) << reading.status().message();
  ASSERT_EQ(reading->values.size(), 2u);
  EXPECT_GT(reading->values[0], 0);
  EXPECT_GT(reading->values[1], 0);

  h.kernel->run_for(std::chrono::milliseconds(50));
  auto later = client.read(*session);
  ASSERT_TRUE(later.has_value());
  EXPECT_GT(later->values[0], reading->values[0]);

  EXPECT_TRUE(client.close().is_ok());
  h.daemon->poll();
  EXPECT_EQ(h.daemon->client_count(), 0u);
  EXPECT_EQ(h.backend->open_fd_count(), 0u);
}

TEST(ServiceDaemon, RequestBeforeHelloIsRefused) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  auto conn = h.transport->connect();
  GetStats msg;
  const auto frame = encode_frame(MsgType::kGetStats, msg.encode());
  ASSERT_TRUE(conn->send(frame.data(), frame.size()).has_value());
  h.daemon->poll();

  std::vector<std::uint8_t> bytes;
  (void)conn->receive(bytes);
  FrameReader reader;
  reader.feed(bytes);
  auto reply = reader.next();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  auto err = WireError::decode(*reply);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->to_status().code(), StatusCode::kPermission);
  EXPECT_EQ(h.daemon->stats().protocol_errors, 1u);
}

TEST(ServiceDaemon, VersionMismatchIsRefused) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  auto conn = h.transport->connect();
  Hello hello;
  hello.version = 999;
  hello.client_name = "from the future";
  const auto frame = encode_frame(MsgType::kHello, hello.encode());
  ASSERT_TRUE(conn->send(frame.data(), frame.size()).has_value());
  h.daemon->poll();

  std::vector<std::uint8_t> bytes;
  (void)conn->receive(bytes);
  FrameReader reader;
  reader.feed(bytes);
  auto reply = reader.next();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kError);
  auto err = WireError::decode(*reply);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->to_status().code(), StatusCode::kNotSupported);
  // The daemon hangs up on a version mismatch.
  h.daemon->poll();
  EXPECT_EQ(h.daemon->client_count(), 0u);
}

TEST(ServiceDaemon, UnknownEventFailsAtomicallyAndSessionSurvives) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("atomic");
  auto session = client.open_session(TargetKind::kThread, h.tid);
  ASSERT_TRUE(session.has_value());

  auto bad = client.add_events(*session,
                               {"PAPI_TOT_INS", "NOT_AN_EVENT_ANYWHERE"});
  ASSERT_FALSE(bad.has_value());
  // All-or-nothing: the good event was rolled back with the bad one.
  auto good = client.add_events(*session, {"PAPI_TOT_INS"});
  ASSERT_TRUE(good.has_value()) << good.status().message();
  ASSERT_TRUE(client.start(*session).is_ok());
  h.kernel->run_for(std::chrono::milliseconds(10));
  auto reading = client.read(*session);
  ASSERT_TRUE(reading.has_value());
  EXPECT_EQ(reading->values.size(), 1u);
  EXPECT_TRUE(client.close().is_ok());
}

TEST(ServiceDaemon, CorruptStreamDropsTheClient) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client ok_client = h.connect("survivor");
  auto conn = h.transport->connect();
  const std::uint8_t garbage[4] = {0, 0, 0, 0};  // impossible length prefix
  ASSERT_TRUE(conn->send(garbage, sizeof(garbage)).has_value());
  h.daemon->poll();
  EXPECT_EQ(h.daemon->client_count(), 1u);  // corrupt client reaped
  EXPECT_GE(h.daemon->stats().protocol_errors, 1u);
  // The healthy client is unaffected.
  auto stats = ok_client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->active_clients, 1u);
}

// --- coalescing ------------------------------------------------------------

TEST(ServiceCoalescing, SameSpecCoalescesAcrossSpellings) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client a = h.connect("a");
  Client b = h.connect("b");
  Client c = h.connect("c");

  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  auto sub_a = a.subscribe(spec);
  ASSERT_TRUE(sub_a.has_value()) << sub_a.status().message();

  // Same spec, different case: must land on the same shared EventSet.
  Subscribe lower = spec;
  lower.events = {"papi_tot_ins", "papi_tot_cyc"};
  auto sub_b = b.subscribe(lower);
  ASSERT_TRUE(sub_b.has_value());
  EXPECT_EQ(sub_b->shared_key_id, sub_a->shared_key_id);
  EXPECT_NE(sub_b->subscription_id, sub_a->subscription_id);

  // Different event order = different value-slot order = distinct key
  // (on a different thread — see ConflictOnSameThread below for why).
  Subscribe reordered = spec;
  reordered.target = h.tids[1];
  reordered.events = {"PAPI_TOT_CYC", "PAPI_TOT_INS"};
  auto sub_c = c.subscribe(reordered);
  ASSERT_TRUE(sub_c.has_value()) << sub_c.status().message();
  EXPECT_NE(sub_c->shared_key_id, sub_a->shared_key_id);

  EXPECT_EQ(h.daemon->distinct_subscription_count(), 2u);
  EXPECT_EQ(h.daemon->total_subscriber_count(), 3u);
}

TEST(ServiceCoalescing, SameThreadConflictsCoalesceOnlyOnIdenticalSpecs) {
  // PAPI allows one running EventSet per component per thread — two
  // independent processes measuring the same thread is exactly what
  // raw PAPI cannot do. Through the daemon an *identical* spec joins
  // the existing shared set instead of conflicting; a *different* spec
  // on the same thread still surfaces the honest PAPI_ECNFLCT.
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client a = h.connect("a");
  Client b = h.connect("b");
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(a.subscribe(spec).has_value());

  auto joined = b.subscribe(spec);  // identical spec: rides along
  ASSERT_TRUE(joined.has_value()) << joined.status().message();

  Subscribe different = spec;
  different.events = {"PAPI_TOT_CYC"};
  auto conflicted = b.subscribe(different);  // same thread, new set
  ASSERT_FALSE(conflicted.has_value());
  EXPECT_EQ(conflicted.status().code(), StatusCode::kConflict);
  // The failed subscribe leaked nothing daemon-side.
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 1u);
  EXPECT_EQ(h.daemon->total_subscriber_count(), 2u);
}

TEST(ServiceCoalescing, BackendReadsScaleWithDistinctSubscriptionsNotClients) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  std::vector<Client> riders;
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  constexpr std::size_t kRiders = 8;
  for (std::size_t i = 0; i < kRiders; ++i) {
    riders.push_back(h.connect("rider" + std::to_string(i)));
    auto sub = riders.back().subscribe(spec);
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->shared_key_id, 1u);  // everyone coalesces onto key 1
  }
  Client loner = h.connect("loner");
  Subscribe other = spec;
  other.target = h.tids[1];
  other.events = {"PAPI_TOT_CYC"};
  ASSERT_TRUE(loner.subscribe(other).has_value());

  const std::uint64_t reads_before = h.daemon->stats().backend_reads;
  const std::uint64_t delivered_before = h.daemon->stats().samples_delivered;
  constexpr std::uint64_t kTicks = 5;
  for (std::uint64_t t = 0; t < kTicks; ++t) h.advance_and_tick();

  // THE coalescing invariant: 2 distinct subscriptions -> 2 reads/tick,
  // while 9 subscribers get 9 samples/tick.
  EXPECT_EQ(h.daemon->stats().backend_reads - reads_before, kTicks * 2);
  EXPECT_EQ(h.daemon->stats().samples_delivered - delivered_before,
            kTicks * (kRiders + 1));

  // Every rider saw every tick, with identical values per tick.
  std::vector<std::vector<WireSample>> streams;
  for (Client& rider : riders) streams.push_back(rider.take_samples());
  for (const auto& stream : streams) {
    ASSERT_EQ(stream.size(), kTicks);
    for (std::size_t i = 0; i < kTicks; ++i) {
      EXPECT_EQ(stream[i].values, streams[0][i].values);
      EXPECT_EQ(stream[i].tick, streams[0][i].tick);
    }
  }
}

TEST(ServiceCoalescing, LastUnsubscribeTearsDownTheSharedEventSet) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client a = h.connect("a");
  Client b = h.connect("b");
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  auto sub_a = a.subscribe(spec);
  auto sub_b = b.subscribe(spec);
  ASSERT_TRUE(sub_a.has_value());
  ASSERT_TRUE(sub_b.has_value());
  ASSERT_EQ(h.daemon->distinct_subscription_count(), 1u);
  const std::size_t fds_shared = h.backend->open_fd_count();
  EXPECT_GT(fds_shared, 0u);

  ASSERT_TRUE(a.unsubscribe(sub_a->subscription_id).is_ok());
  // One rider remains: the shared set must survive.
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 1u);
  EXPECT_EQ(h.backend->open_fd_count(), fds_shared);

  ASSERT_TRUE(b.unsubscribe(sub_b->subscription_id).is_ok());
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 0u);
  EXPECT_EQ(h.backend->open_fd_count(), 0u);

  // Re-subscribing builds a fresh shared set under a fresh key.
  auto again = a.subscribe(spec);
  ASSERT_TRUE(again.has_value());
  EXPECT_NE(again->shared_key_id, sub_a->shared_key_id);
}

TEST(ServiceCoalescing, PeriodAndQualifiedStreaming) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client slow = h.connect("slow");
  Client fine = h.connect("fine");

  Subscribe every2;
  every2.target_kind = TargetKind::kThread;
  every2.target = h.tid;
  every2.events = {"PAPI_TOT_INS"};
  every2.period_ticks = 2;
  ASSERT_TRUE(slow.subscribe(every2).has_value());

  Subscribe qualified = every2;
  qualified.target = h.tids[1];
  qualified.period_ticks = 1;
  qualified.qualified = 1;
  {
    auto q = fine.subscribe(qualified);
    ASSERT_TRUE(q.has_value()) << q.status().message();
  }

  for (int t = 0; t < 6; ++t) h.advance_and_tick();

  const auto slow_samples = slow.take_samples();
  ASSERT_EQ(slow_samples.size(), 3u);  // ticks 2, 4, 6
  for (const WireSample& s : slow_samples) EXPECT_EQ(s.tick % 2, 0u);

  const auto fine_samples = fine.take_samples();
  ASSERT_EQ(fine_samples.size(), 6u);
  for (const WireSample& s : fine_samples) {
    ASSERT_EQ(s.values.size(), 1u);
    ASSERT_EQ(s.parts.size(), 1u);
    // Qualified: the per-PMU constituents sum to the derived total, and
    // each is labelled with its core type (hybrid machine -> P and E).
    long long sum = 0;
    for (const auto& [label, value] : s.parts[0]) {
      sum += value;
      EXPECT_NE(label.find('['), std::string::npos) << label;
    }
    EXPECT_EQ(sum, s.values[0]);
    EXPECT_GE(s.parts[0].size(), 2u);
  }
}

TEST(ServiceCoalescing, QualifiedStreamOnTriHybridCarriesThreeParts) {
  // End-to-end on the three-PMU hybrid: a qualified subscription's
  // samples must carry one labelled constituent per core PMU — P, E,
  // and LP-E — whose signed sum reproduces the derived total.
  Harness h;
  h.machine = cpumodel::meteor_lake_like();
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("tri");

  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  spec.period_ticks = 1;
  spec.qualified = 1;
  {
    auto sub = client.subscribe(spec);
    ASSERT_TRUE(sub.has_value()) << sub.status().message();
  }

  for (int t = 0; t < 4; ++t) h.advance_and_tick();

  const auto samples = client.take_samples();
  ASSERT_GE(samples.size(), 1u);
  for (const WireSample& s : samples) {
    ASSERT_EQ(s.parts.size(), 1u);
    ASSERT_EQ(s.parts[0].size(), 3u)
        << "three core PMUs -> three qualified parts";
    long long sum = 0;
    std::set<std::string> labels;
    for (const auto& [label, value] : s.parts[0]) {
      sum += value;
      const auto open = label.find('[');
      ASSERT_NE(open, std::string::npos) << label;
      labels.insert(label.substr(open));
    }
    EXPECT_EQ(sum, s.values[0]);
    EXPECT_EQ(labels.size(), 3u) << "each part has a distinct core type";
  }
}

// --- robustness ------------------------------------------------------------

TEST(ServiceRobustness, SlowClientIsDroppedOthersKeepStreaming) {
  Harness h;
  DaemonConfig config;
  config.max_client_queue_frames = 4;
  ASSERT_TRUE(h.init(config).is_ok());
  Client snappy = h.connect("snappy");  // connection index 0
  Client sluggish = h.connect("sluggish");  // connection index 1

  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(snappy.subscribe(spec).has_value());
  ASSERT_TRUE(sluggish.subscribe(spec).has_value());
  ASSERT_EQ(h.daemon->client_count(), 2u);

  // Wedge the slow client: daemon writes toward it now report
  // would-block, so its queue grows by one frame per tick.
  h.transport->set_client_paused(1, true);
  for (int t = 0; t < 8; ++t) {
    h.advance_and_tick();
    (void)snappy.take_samples();  // the healthy client keeps draining
  }

  EXPECT_EQ(h.daemon->stats().clients_dropped_slow, 1u);
  EXPECT_EQ(h.daemon->client_count(), 1u);
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 1u);  // snappy's
  EXPECT_EQ(h.daemon->total_subscriber_count(), 1u);

  // The dropped side observes a dead connection.
  h.transport->set_client_paused(1, false);
  EXPECT_FALSE(sluggish.pump_once());

  // And the healthy stream never stalled.
  h.advance_and_tick();
  EXPECT_FALSE(snappy.take_samples().empty());
}

TEST(ServiceRobustness, IdleClientsWithoutSubscriptionsTimeOut) {
  Harness h;
  DaemonConfig config;
  config.idle_timeout_ticks = 3;
  ASSERT_TRUE(h.init(config).is_ok());
  Client idle = h.connect("idle");
  Client busy = h.connect("busy");
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(busy.subscribe(spec).has_value());

  for (int t = 0; t < 5; ++t) h.advance_and_tick();

  EXPECT_EQ(h.daemon->stats().clients_closed_idle, 1u);
  EXPECT_EQ(h.daemon->client_count(), 1u);
  // The idle client got a Goodbye explaining the drop.
  (void)idle.pump_once();
  EXPECT_NE(idle.goodbye_reason().find("idle"), std::string::npos)
      << idle.goodbye_reason();
  // Subscribed clients are exempt however quiet their request side is.
  EXPECT_EQ(h.daemon->total_subscriber_count(), 1u);
}

TEST(ServiceRobustness, GracefulShutdownSaysGoodbyeAndLeaksNothing) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client a = h.connect("a");
  Client b = h.connect("b");
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  ASSERT_TRUE(a.subscribe(spec).has_value());
  auto session = b.open_session(TargetKind::kThread, h.tids[1]);
  ASSERT_TRUE(session.has_value());
  ASSERT_TRUE(b.add_events(*session, {"PAPI_BR_INS"}).has_value());
  ASSERT_TRUE(b.start(*session).is_ok());
  EXPECT_GT(h.backend->open_fd_count(), 0u);

  h.daemon->shutdown();

  (void)a.pump_once();
  (void)b.pump_once();
  EXPECT_EQ(a.goodbye_reason(), "daemon shutting down");
  EXPECT_EQ(b.goodbye_reason(), "daemon shutting down");
  EXPECT_EQ(h.daemon->client_count(), 0u);
  EXPECT_EQ(h.backend->open_fd_count(), 0u);  // the leak oracle
  // Idempotent.
  h.daemon->shutdown();
}

TEST(ServiceRobustness, ChunkedTransportDeliveryStillWorks) {
  // Force 3-byte delivery chunks: every frame crosses receive() calls,
  // exercising reassembly on both sides of the wire.
  Harness h;
  LoopbackTransport::Config tconfig;
  tconfig.max_chunk_bytes = 3;
  ASSERT_TRUE(h.init({}, tconfig).is_ok());
  Client client = h.connect("chunked");
  auto session = client.open_session(TargetKind::kThread, h.tid);
  ASSERT_TRUE(session.has_value());
  ASSERT_TRUE(client.add_events(*session, {"PAPI_TOT_INS"}).has_value());
  ASSERT_TRUE(client.start(*session).is_ok());
  h.kernel->run_for(std::chrono::milliseconds(20));
  auto reading = client.read(*session);
  ASSERT_TRUE(reading.has_value());
  EXPECT_GT(reading->values[0], 0);
  EXPECT_TRUE(client.close().is_ok());
}

// --- session edges (PR 9: self-healing fabric) ------------------------------

TEST(ServiceRobustness, GoodbyeArrivingMidRpcFailsTheRpcCleanly) {
  Harness h;
  ASSERT_TRUE(h.init().is_ok());
  Client client = h.connect("midrpc");
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(client.subscribe(spec).has_value());

  // Arm the pump: the next time the client touches the transport, the
  // daemon shuts down instead of serving — the RPC's reply slot is
  // filled by a Goodbye.
  bool armed = true;
  h.transport->set_pump([&] {
    if (armed) {
      armed = false;
      h.daemon->shutdown();
      return;
    }
    h.daemon->poll();
  });
  auto st = client.stats();
  ASSERT_FALSE(st.has_value());
  EXPECT_EQ(st.status().code(), StatusCode::kNotRunning);
  EXPECT_NE(st.status().message().find("goodbye"), std::string::npos)
      << st.status().message();
  EXPECT_EQ(client.goodbye_reason(), "daemon shutting down");
  EXPECT_EQ(h.backend->open_fd_count(), 0u);
}

TEST(ServiceRobustness, SlowClientDropReleasesItsAggregateRider) {
  Harness h;
  DaemonConfig config;
  config.max_client_queue_frames = 4;
  ASSERT_TRUE(h.init(config).is_ok());
  Client keeper = h.connect("keeper");  // connection index 0
  Client doomed = h.connect("doomed");  // connection index 1

  AggSubscribe agg;
  agg.target_kind = TargetKind::kThread;
  agg.target = h.tid;
  agg.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  auto keeper_agg = keeper.subscribe_aggregate(agg);
  ASSERT_TRUE(keeper_agg.has_value()) << keeper_agg.status().message();
  auto doomed_agg = doomed.subscribe_aggregate(agg);
  ASSERT_TRUE(doomed_agg.has_value());
  EXPECT_EQ(doomed_agg->shared_key_id, keeper_agg->shared_key_id);
  Subscribe direct;
  direct.target_kind = TargetKind::kThread;
  direct.target = h.tids[1];
  direct.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(doomed.subscribe(direct).has_value());
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 2u);

  h.transport->set_client_paused(1, true);
  for (int t = 0; t < 8; ++t) {
    h.advance_and_tick();
    (void)keeper.pump_once();
  }
  EXPECT_EQ(h.daemon->stats().clients_dropped_slow, 1u);
  EXPECT_EQ(h.daemon->client_count(), 1u);
  // Everything the dropped client held is released: its direct
  // subscription's EventSet torn down, its aggregate ride detached —
  // only the keeper's rider remains on the coalesced aggregate.
  EXPECT_EQ(h.daemon->distinct_subscription_count(), 1u);
  EXPECT_EQ(h.daemon->total_subscriber_count(), 1u);

  // The surviving rider keeps streaming.
  (void)keeper.take_agg_samples();
  h.advance_and_tick();
  (void)keeper.pump_once();
  EXPECT_FALSE(keeper.take_agg_samples().empty());
  EXPECT_TRUE(keeper.goodbye_reason().empty());
}

TEST(ServiceRobustness, LivenessPingsDropAHalfOpenClientButSpareTheResponsive) {
  Harness h;
  DaemonConfig config;
  config.ping_interval_ticks = 2;
  config.ping_max_missed = 2;
  ASSERT_TRUE(h.init(config).is_ok());
  Client responsive = h.connect("responsive");
  Client silent = h.connect("silent");

  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(responsive.subscribe(spec).has_value());
  // The half-open peer holds a subscription — liveness must drop it
  // anyway, or a dead connection pins an EventSet forever.
  ASSERT_TRUE(silent.subscribe(spec).has_value());

  for (int t = 0; t < 14; ++t) {
    h.advance_and_tick();
    // Explicit poll: the daemon must drain the Pong answers (the pump
    // hook only fires when the client's pipe is empty, and the sample
    // stream keeps it full).
    h.daemon->poll();
    // The responsive client pumps every tick, which also answers Pings.
    (void)responsive.pump_once();
  }
  EXPECT_EQ(h.daemon->stats().clients_dropped_liveness, 1u);
  EXPECT_GE(h.daemon->stats().pings_missed, 2u);
  EXPECT_EQ(h.daemon->client_count(), 1u);

  // The buffered Goodbye names the cause.
  while (silent.pump_once()) {
  }
  EXPECT_NE(silent.goodbye_reason().find("liveness"), std::string::npos)
      << silent.goodbye_reason();

  // The responsive client never got dropped and still streams.
  EXPECT_TRUE(responsive.goodbye_reason().empty());
  (void)responsive.take_samples();
  h.advance_and_tick();
  h.daemon->poll();
  (void)responsive.pump_once();
  EXPECT_FALSE(responsive.take_samples().empty());
}

TEST(ServiceRobustness, AdmissionRefusesClientsBeyondMaxClients) {
  Harness h;
  DaemonConfig config;
  config.max_clients = 1;
  ASSERT_TRUE(h.init(config).is_ok());
  Client first = h.connect("first");

  Client second(h.transport->connect());
  Status st = second.hello("second");
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  EXPECT_EQ(h.daemon->stats().overload_rejections, 1u);
  EXPECT_EQ(h.daemon->client_count(), 1u);
  while (second.pump_once()) {
  }
  EXPECT_NE(second.goodbye_reason().find("overloaded"), std::string::npos)
      << second.goodbye_reason();

  // The admitted client is unaffected, and its departure frees the slot.
  ASSERT_TRUE(first.stats().has_value());
  EXPECT_TRUE(first.close().is_ok());
  h.daemon->poll();
  Client third = h.connect("third");
  EXPECT_TRUE(third.stats().has_value());
}

TEST(ServiceRobustness, AdmissionRefusesSubscriptionsBeyondMaxSubscriptions) {
  Harness h;
  DaemonConfig config;
  config.max_subscriptions = 1;
  ASSERT_TRUE(h.init(config).is_ok());
  Client client = h.connect("capped");

  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  auto first = client.subscribe(spec);
  ASSERT_TRUE(first.has_value()) << first.status().message();

  Subscribe over = spec;
  over.target = h.tids[1];
  auto refused = client.subscribe(over);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.status().code(), StatusCode::kOverloaded);
  EXPECT_EQ(h.daemon->stats().overload_rejections, 1u);

  // Unsubscribing frees capacity.
  ASSERT_TRUE(client.unsubscribe(first->subscription_id).is_ok());
  EXPECT_TRUE(client.subscribe(over).has_value());
}

TEST(ServiceRobustness, ShutdownFlushIsBoundedForAWedgedClient) {
  Harness h;
  DaemonConfig config;
  config.shutdown_max_flush_ops = 2;
  ASSERT_TRUE(h.init(config).is_ok());
  Client fine = h.connect("fine");      // connection index 0
  Client wedged = h.connect("wedged");  // connection index 1
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = h.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(wedged.subscribe(spec).has_value());

  // Let frames pile up behind a peer that stops accepting bytes.
  h.transport->set_client_paused(1, true);
  for (int t = 0; t < 4; ++t) h.advance_and_tick();

  // Bounded: shutdown() must return even though the wedged pipe will
  // never drain, and must still leak nothing.
  h.daemon->shutdown();
  EXPECT_EQ(h.daemon->client_count(), 0u);
  EXPECT_EQ(h.backend->open_fd_count(), 0u);

  // The healthy client still got its farewell.
  while (fine.pump_once()) {
  }
  EXPECT_EQ(fine.goodbye_reason(), "daemon shutting down");
}

// --- determinism -----------------------------------------------------------

std::vector<std::vector<std::uint8_t>> run_stream_scenario(
    std::size_t encode_threads, std::size_t shards = 1) {
  Harness h;
  DaemonConfig config;
  config.encode_threads = encode_threads;
  config.shards = shards;
  EXPECT_TRUE(h.init(config).is_ok());

  std::vector<Client> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(h.connect("det" + std::to_string(i)));
    clients.back().set_capture_bytes(true);
  }
  Subscribe shared;
  shared.target_kind = TargetKind::kThread;
  shared.target = h.tid;
  shared.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  Subscribe qualified = shared;
  qualified.target = h.tids[1];
  qualified.qualified = 1;
  EXPECT_TRUE(clients[0].subscribe(shared).has_value());
  EXPECT_TRUE(clients[1].subscribe(shared).has_value());
  EXPECT_TRUE(clients[1].subscribe(qualified).has_value());
  EXPECT_TRUE(clients[2].subscribe(qualified).has_value());

  for (int t = 0; t < 5; ++t) {
    h.advance_and_tick();
    for (Client& c : clients) (void)c.pump_once();
  }
  std::vector<std::vector<std::uint8_t>> streams;
  for (Client& c : clients) streams.push_back(c.captured_bytes());
  return streams;
}

TEST(ServiceDeterminism, ByteIdenticalStreamsAcrossEncodeThreadCounts) {
  const auto serial = run_stream_scenario(1);
  const auto threaded = run_stream_scenario(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], threaded[i]) << "client " << i;
  }
}

TEST(ServiceDeterminism, ByteIdenticalStreamsAcrossShardCounts) {
  // The sharded fan-out is a parallelism knob, not a semantic one: the
  // byte stream every client sees is identical at 1, 4, and 16 shards
  // (and with the encode pool in play on top).
  const auto one = run_stream_scenario(1, 1);
  const auto four = run_stream_scenario(1, 4);
  const auto sixteen = run_stream_scenario(4, 16);
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), sixteen.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].empty());
    EXPECT_EQ(one[i], four[i]) << "client " << i;
    EXPECT_EQ(one[i], sixteen[i]) << "client " << i;
  }
}

// --- chaos -----------------------------------------------------------------

/// One seeded soak of the daemon behind the fault injector: randomized
/// client traffic under the "mixed" profile. Invariants: no crash, a
/// clean shutdown, zero leaked fds, and a bit-identical outcome trace
/// for identical seeds.
std::string run_chaos_soak(std::uint64_t seed) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend sim(&kernel);
  auto profile = FaultProfile::named("mixed");
  EXPECT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&sim, *profile, seed);
  PhaseSpec phase;
  std::vector<Tid> tids;
  for (int cpu = 0; cpu < 3; ++cpu) {
    tids.push_back(kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 4'000'000'000ull),
        CpuSet::of({cpu})));
  }

  std::ostringstream trace;
  {
    LoopbackTransport transport;
    DaemonConfig config;
    config.max_client_queue_frames = 16;
    config.idle_timeout_ticks = 32;
    Daemon daemon(&kernel, &injector, config);
    const Status init = daemon.init();
    trace << "init=" << (init.is_ok() ? "ok" : to_string(init.code())) << ";";
    if (init.is_ok()) {
      daemon.add_listener(transport.listener());
      transport.set_pump([&daemon] { daemon.poll(); });

      std::mt19937_64 rng(seed * 77 + 1);
      std::vector<std::unique_ptr<Client>> clients;
      std::vector<std::vector<std::uint32_t>> subs;  // per client
      const char* events[] = {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_BR_INS"};
      const auto record = [&trace](std::string_view op, const Status& s) {
        trace << op << "=" << (s.is_ok() ? "ok" : to_string(s.code())) << ";";
      };
      for (int step = 0; step < 400; ++step) {
        const std::uint64_t dice = rng() % 100;
        if (clients.empty() || (dice < 10 && clients.size() < 12)) {
          auto c = std::make_unique<Client>(transport.connect());
          record("hello", c->hello("chaos" + std::to_string(step)));
          clients.push_back(std::move(c));
          subs.emplace_back();
        } else if (dice < 35) {
          const std::size_t i = rng() % clients.size();
          Subscribe spec;
          spec.target_kind = TargetKind::kThread;
          spec.target = tids[rng() % tids.size()];
          spec.events = {events[rng() % 3]};
          spec.period_ticks = 1 + static_cast<std::uint32_t>(rng() % 3);
          spec.qualified = rng() % 2 ? 1 : 0;
          if (auto sub = clients[i]->subscribe(spec)) {
            subs[i].push_back(sub->subscription_id);
            trace << "sub=ok/" << sub->shared_key_id << ";";
          } else {
            record("sub", sub.status());
          }
        } else if (dice < 45) {
          const std::size_t i = rng() % clients.size();
          if (!subs[i].empty()) {
            const std::size_t j = rng() % subs[i].size();
            record("unsub", clients[i]->unsubscribe(subs[i][j]));
            subs[i].erase(subs[i].begin() + static_cast<std::ptrdiff_t>(j));
          }
        } else if (dice < 60) {
          const std::size_t i = rng() % clients.size();
          auto session = clients[i]->open_session(
              TargetKind::kThread, tids[rng() % tids.size()]);
          if (session.has_value()) {
            auto added = clients[i]->add_events(*session, {events[rng() % 3]});
            record("add", added.status());
            if (added.has_value()) {
              record("start", clients[i]->start(*session));
              auto reading = clients[i]->read(*session);
              record("read", reading.status());
            }
          } else {
            record("open", session.status());
          }
        } else if (dice < 70) {
          const std::size_t i = rng() % clients.size();
          record("close", clients[i]->close());
          clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
          subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          kernel.run_for(std::chrono::milliseconds(1 + rng() % 5));
          daemon.tick();
        }
        // Clients the daemon dropped (goodbye or error teardown) are
        // retired from the roster.
        for (std::size_t i = clients.size(); i-- > 0;) {
          if (!clients[i]->connected() ||
              !clients[i]->goodbye_reason().empty()) {
            trace << "retire;";
            clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
            subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
      }
      trace << "ticks=" << daemon.stats().ticks
            << ";dropped=" << daemon.stats().clients_dropped_slow
            << ";idle=" << daemon.stats().clients_closed_idle
            << ";reads=" << daemon.stats().backend_reads << ";";
      daemon.shutdown();
    }
  }
  EXPECT_EQ(injector.open_fd_count(), 0u)
      << "seed " << seed
      << " leaked: " << testing::PrintToString(injector.leaked_fds());
  EXPECT_EQ(sim.open_fd_count(), 0u);
  trace << "faults=" << injector.stats().total_injected() << ";";
  return trace.str();
}

TEST(ServiceChaos, MixedFaultSoakLeaksNothingOnAnySeed) {
  for (const std::uint64_t seed : {1ull, 42ull, 1234ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string trace = run_chaos_soak(seed);
    EXPECT_FALSE(trace.empty());
  }
}

TEST(ServiceChaos, SameSeedSameSoakTrace) {
  EXPECT_EQ(run_chaos_soak(7), run_chaos_soak(7));
  EXPECT_EQ(run_chaos_soak(99), run_chaos_soak(99));
}

// --- unix-domain sockets (linux-host shard) --------------------------------

TEST(ServiceLinuxHost, UnixSocketSmoke) {
  const std::string path =
      "/tmp/hetpapid_test_" + std::to_string(::getpid()) + ".sock";
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  Daemon daemon(&kernel, &backend, DaemonConfig{});
  ASSERT_TRUE(daemon.init().is_ok());
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 4'000'000'000ull),
      CpuSet::of({0}));
  auto listener = unix_listen(path);
  ASSERT_TRUE(listener.has_value()) << listener.status().message();
  daemon.add_listener(listener->get());

  // The daemon, the kernel and the workload all live on this service
  // thread; the test thread is a real external client on the socket.
  std::atomic<bool> stop{false};
  std::thread service([&] {
    while (!stop.load()) {
      daemon.poll();
      kernel.run_for(std::chrono::milliseconds(1));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    daemon.shutdown();
  });

  {
    auto conn = unix_connect(path);
    ASSERT_TRUE(conn.has_value()) << conn.status().message();
    Client client(std::move(*conn));
    ASSERT_TRUE(client.hello("socket-smoke").is_ok());
    auto session = client.open_session(TargetKind::kThread, tid);
    ASSERT_TRUE(session.has_value()) << session.status().message();
    auto ack = client.add_events(*session, {"papi_tot_ins"});
    ASSERT_TRUE(ack.has_value()) << ack.status().message();
    EXPECT_EQ(ack->canonical_names,
              std::vector<std::string>{"PAPI_TOT_INS"});
    ASSERT_TRUE(client.start(*session).is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto first = client.read(*session);
    ASSERT_TRUE(first.has_value()) << first.status().message();
    ASSERT_EQ(first->values.size(), 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto second = client.read(*session);
    ASSERT_TRUE(second.has_value());
    EXPECT_GT(second->values[0], first->values[0]);
    EXPECT_TRUE(client.close().is_ok());
  }

  stop.store(true);
  service.join();
  EXPECT_EQ(backend.open_fd_count(), 0u);
}

}  // namespace
}  // namespace hetpapi
