// In-memory sysfs/procfs tree semantics.
#include <gtest/gtest.h>

#include "vfs/vfs.hpp"

namespace hetpapi::vfs {
namespace {

TEST(Canonicalize, CollapsesAndValidates) {
  EXPECT_EQ(*canonicalize("/a/b/c"), "/a/b/c");
  EXPECT_EQ(*canonicalize("/a//b///c/"), "/a/b/c");
  EXPECT_EQ(*canonicalize("/a/./b"), "/a/b");
  EXPECT_EQ(*canonicalize("/"), "/");
  EXPECT_FALSE(canonicalize("relative/path").has_value());
  EXPECT_FALSE(canonicalize("").has_value());
  EXPECT_FALSE(canonicalize("/a/../b").has_value());
}

TEST(Vfs, WriteCreatesParentsImplicitly) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/sys/devices/cpu_core/type", "4\n").is_ok());
  EXPECT_TRUE(fs.exists("/sys"));
  EXPECT_TRUE(fs.is_dir("/sys/devices"));
  EXPECT_TRUE(fs.is_dir("/sys/devices/cpu_core"));
  EXPECT_FALSE(fs.is_dir("/sys/devices/cpu_core/type"));
  EXPECT_EQ(*fs.read_file("/sys/devices/cpu_core/type"), "4\n");
}

TEST(Vfs, ReadValueTrimsAndReadIntParses) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/x", "  1024 \n").is_ok());
  EXPECT_EQ(*fs.read_value("/x"), "1024");
  EXPECT_EQ(*fs.read_int("/x"), 1024);
  ASSERT_TRUE(fs.write_file("/y", "not-a-number\n").is_ok());
  EXPECT_EQ(fs.read_int("/y").status().code(), StatusCode::kInvalidArgument);
}

TEST(Vfs, OverwriteReplacesContents) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/f", "old").is_ok());
  ASSERT_TRUE(fs.write_file("/f", "new").is_ok());
  EXPECT_EQ(*fs.read_file("/f"), "new");
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST(Vfs, AppendConcatenates) {
  Vfs fs;
  ASSERT_TRUE(fs.append_file("/log", "a").is_ok());
  ASSERT_TRUE(fs.append_file("/log", "b").is_ok());
  EXPECT_EQ(*fs.read_file("/log"), "ab");
}

TEST(Vfs, MissingFileIsNotFound) {
  Vfs fs;
  const auto missing = fs.read_file("/nope");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(Vfs, CannotWriteOverDirectory) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/dir/file", "x").is_ok());
  const Status clash = fs.write_file("/dir", "y");
  EXPECT_EQ(clash.code(), StatusCode::kInvalidArgument);
}

TEST(Vfs, ListDirReturnsSortedImmediateChildren) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/sys/devices/cpu_core/type", "4").is_ok());
  ASSERT_TRUE(fs.write_file("/sys/devices/cpu_atom/type", "8").is_ok());
  ASSERT_TRUE(fs.write_file("/sys/devices/cpu_atom/cpus", "16-23").is_ok());
  const auto names = fs.list_dir("/sys/devices");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"cpu_atom", "cpu_core"}));
  const auto atom = fs.list_dir("/sys/devices/cpu_atom");
  EXPECT_EQ(*atom, (std::vector<std::string>{"cpus", "type"}));
}

TEST(Vfs, ListRootWorks) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/proc/cpuinfo", "x").is_ok());
  ASSERT_TRUE(fs.write_file("/sys/kernel/version", "y").is_ok());
  const auto names = fs.list_dir("/");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"proc", "sys"}));
}

TEST(Vfs, ListMissingDirIsNotFound) {
  Vfs fs;
  EXPECT_EQ(fs.list_dir("/ghost").status().code(), StatusCode::kNotFound);
}

TEST(Vfs, RemoveFileAndRecursiveDirectory) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/a/b/one", "1").is_ok());
  ASSERT_TRUE(fs.write_file("/a/b/two", "2").is_ok());
  ASSERT_TRUE(fs.write_file("/a/keep", "3").is_ok());
  ASSERT_TRUE(fs.remove("/a/b/one").is_ok());
  EXPECT_FALSE(fs.exists("/a/b/one"));
  ASSERT_TRUE(fs.remove("/a/b").is_ok());
  EXPECT_FALSE(fs.exists("/a/b"));
  EXPECT_FALSE(fs.exists("/a/b/two"));
  EXPECT_TRUE(fs.exists("/a/keep"));
  EXPECT_EQ(fs.remove("/a/b").code(), StatusCode::kNotFound);
}

TEST(Vfs, ListDirIndexSurvivesNestedAndAmbiguousPaths) {
  // The child index must reproduce the old full-scan listing exactly,
  // including the ambiguous case where one directory's name is a prefix
  // of a sibling file ("/a/b" dir vs "/a/bc" file) and deep nesting.
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/a/b/deep/leaf", "1").is_ok());
  ASSERT_TRUE(fs.write_file("/a/bc", "2").is_ok());
  ASSERT_TRUE(fs.write_file("/a/b.d", "3").is_ok());
  ASSERT_TRUE(fs.write_file("/ab/x", "4").is_ok());
  ASSERT_TRUE(fs.append_file("/a/b/appended", "5").is_ok());

  EXPECT_EQ(*fs.list_dir("/"), (std::vector<std::string>{"a", "ab"}));
  // "b" (dir), "b.d" and "bc" (files) are distinct immediate children;
  // nothing from /ab or /a/b/deep leaks in.
  EXPECT_EQ(*fs.list_dir("/a"),
            (std::vector<std::string>{"b", "b.d", "bc"}));
  EXPECT_EQ(*fs.list_dir("/a/b"),
            (std::vector<std::string>{"appended", "deep"}));
  EXPECT_EQ(*fs.list_dir("/a/b/deep"), (std::vector<std::string>{"leaf"}));

  // Overwrites do not duplicate entries.
  ASSERT_TRUE(fs.write_file("/a/bc", "2'").is_ok());
  EXPECT_EQ(*fs.list_dir("/a"),
            (std::vector<std::string>{"b", "b.d", "bc"}));
}

TEST(Vfs, ListDirIndexTracksRemovals) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/a/b/one", "1").is_ok());
  ASSERT_TRUE(fs.write_file("/a/b/two", "2").is_ok());
  ASSERT_TRUE(fs.write_file("/a/keep", "3").is_ok());

  ASSERT_TRUE(fs.remove("/a/b/one").is_ok());
  EXPECT_EQ(*fs.list_dir("/a/b"), (std::vector<std::string>{"two"}));

  // rm -r of a subtree drops the directory from its parent's listing
  // and forgets the whole subtree's index.
  ASSERT_TRUE(fs.remove("/a/b").is_ok());
  EXPECT_EQ(*fs.list_dir("/a"), (std::vector<std::string>{"keep"}));
  EXPECT_EQ(fs.list_dir("/a/b").status().code(), StatusCode::kNotFound);

  // Re-creating the removed path rebuilds a fresh index.
  ASSERT_TRUE(fs.write_file("/a/b/three", "3").is_ok());
  EXPECT_EQ(*fs.list_dir("/a/b"), (std::vector<std::string>{"three"}));
  EXPECT_EQ(*fs.list_dir("/a"), (std::vector<std::string>{"b", "keep"}));
}

TEST(Vfs, PathsAreCanonicalizedOnEveryOperation) {
  Vfs fs;
  ASSERT_TRUE(fs.write_file("/a//b/./c", "v").is_ok());
  EXPECT_EQ(*fs.read_file("/a/b/c"), "v");
  EXPECT_TRUE(fs.exists("//a/b//c/"));
}

}  // namespace
}  // namespace hetpapi::vfs
