// Scheduler invariants: affinity is law, fairness between peers,
// capacity-biased placement, and migration behaviour.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using cpumodel::MachineSpec;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

TEST(CpuSet, BasicOperations) {
  CpuSet set = CpuSet::of({1, 3, 5});
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(2));
  EXPECT_EQ(set.count(), 3);
  set.remove(3);
  EXPECT_FALSE(set.contains(3));
  EXPECT_EQ(set.to_list(), (std::vector<int>{1, 5}));
  EXPECT_EQ(CpuSet::all(4).count(), 4);
  EXPECT_TRUE(CpuSet().empty());
}

TEST(Scheduler, AffinityIsNeverViolated) {
  // Property: a thread restricted to the E-cores never executes a single
  // instruction on a P-core, even under heavy migration pressure.
  SimKernel::Config config;
  config.sched.migration_rate_hz = 200.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  const CpuSet e_cores = CpuSet::of({16, 17, 18, 19, 20, 21, 22, 23});
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 500'000'000), e_cores);
  kernel.run_until_idle(std::chrono::seconds(60));
  const auto* truth = kernel.ground_truth(tid);
  EXPECT_EQ(truth->per_type[0].instructions, 0u) << "no P-core execution";
  EXPECT_EQ(truth->per_type[1].instructions, 500'000'000u);
}

TEST(Scheduler, SetAffinityValidatesArguments) {
  SimKernel kernel(cpumodel::homogeneous_xeon(4));
  PhaseSpec phase;
  const Tid tid =
      kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 1000));
  EXPECT_EQ(kernel.set_affinity(tid, CpuSet()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(kernel.set_affinity(tid, CpuSet::of({9})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(kernel.set_affinity(99, CpuSet::of({0})).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(kernel.set_affinity(tid, CpuSet::of({1})).is_ok());
}

TEST(Scheduler, TwoThreadsShareOneCpuFairly) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  PhaseSpec phase;
  const Tid a = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
      CpuSet::of({0}));
  const Tid b = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
      CpuSet::of({0}));
  kernel.run_for(std::chrono::seconds(4));
  const auto a_time = static_cast<double>(
      kernel.ground_truth(a)->total_cpu_time.count());
  const auto b_time = static_cast<double>(
      kernel.ground_truth(b)->total_cpu_time.count());
  EXPECT_NEAR(a_time / (a_time + b_time), 0.5, 0.05);
  EXPECT_GT(kernel.ground_truth(a)->context_switches, 10u);
}

TEST(Scheduler, CapacityWeightedFairnessOnHybrid) {
  // Two compute-bound threads restricted to one P and one E cpu each get
  // the whole cpu (no sharing); a third unrestricted thread must not
  // starve either. Mostly a smoke test for vruntime scaling.
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  PhaseSpec phase;
  const Tid pinned_p = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
      CpuSet::of({0}));
  const Tid pinned_e = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000'000ULL),
      CpuSet::of({16}));
  kernel.run_for(std::chrono::seconds(2));
  const auto* p_truth = kernel.ground_truth(pinned_p);
  const auto* e_truth = kernel.ground_truth(pinned_e);
  // Both fully utilized their cpu.
  EXPECT_NEAR(static_cast<double>(p_truth->total_cpu_time.count()), 2e9,
              2e7);
  EXPECT_NEAR(static_cast<double>(e_truth->total_cpu_time.count()), 2e9,
              2e7);
  // The P-core thread retired more instructions in equal time.
  EXPECT_GT(p_truth->total().instructions, e_truth->total().instructions);
}

TEST(Scheduler, UnpinnedThreadPrefersHighCapacityCores) {
  SimKernel::Config config;
  config.sched.migration_rate_hz = 50.0;
  SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 40'000'000'000ULL),
      CpuSet::all(24));
  kernel.run_until_idle(std::chrono::seconds(120));
  const auto* truth = kernel.ground_truth(tid);
  const double p_time =
      static_cast<double>(truth->time_per_type[0].count());
  const double e_time =
      static_cast<double>(truth->time_per_type[1].count());
  EXPECT_GT(p_time, e_time) << "capacity bias favours P cores";
  EXPECT_GT(e_time, 0.0) << "but E cores are visited";
  EXPECT_GT(truth->migrations, 5u);
}

TEST(Scheduler, PlacementPoliciesShiftResidency) {
  // Long unpinned run under each policy: the E-residency ordering must
  // be little-first > uniform > capacity-biased.
  const auto run_policy = [](simkernel::PlacementPolicy policy) {
    SimKernel::Config config;
    config.sched.policy = policy;
    config.sched.migration_rate_hz = 200.0;
    SimKernel kernel(cpumodel::raptor_lake_i7_13700(), config);
    PhaseSpec phase;
    const Tid tid = kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 40'000'000'000ULL),
        CpuSet::all(24));
    kernel.run_for(std::chrono::seconds(2));
    const auto* truth = kernel.ground_truth(tid);
    const double p = static_cast<double>(truth->time_per_type[0].count());
    const double e = static_cast<double>(truth->time_per_type[1].count());
    return e / (p + e);
  };
  const double biased = run_policy(simkernel::PlacementPolicy::kCapacityBiased);
  const double uniform = run_policy(simkernel::PlacementPolicy::kUniform);
  const double little = run_policy(simkernel::PlacementPolicy::kLittleFirst);
  EXPECT_LT(biased, uniform);
  EXPECT_LT(uniform, little);
  EXPECT_NEAR(biased, 0.17, 0.10) << "default tracks the paper's residency";
}

TEST(Scheduler, MoreThreadsThanCpusAllComplete) {
  SimKernel kernel(cpumodel::homogeneous_xeon(2));
  PhaseSpec phase;
  std::vector<Tid> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 50'000'000)));
  }
  kernel.run_until_idle(std::chrono::seconds(120));
  for (const Tid tid : tids) {
    EXPECT_FALSE(kernel.thread_alive(tid));
    EXPECT_EQ(kernel.ground_truth(tid)->total().instructions, 50'000'000u);
  }
}

TEST(Scheduler, ExitedThreadsFreeTheirCpus) {
  SimKernel kernel(cpumodel::homogeneous_xeon(1));
  PhaseSpec phase;
  const Tid a = kernel.spawn(std::make_shared<FixedWorkProgram>(phase, 1000),
                             CpuSet::of({0}));
  kernel.run_until_idle(std::chrono::seconds(5));
  EXPECT_FALSE(kernel.thread_alive(a));
  const Tid b = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000), CpuSet::of({0}));
  kernel.run_until_idle(std::chrono::seconds(5));
  EXPECT_EQ(kernel.ground_truth(b)->total().instructions, 1'000'000u);
}

}  // namespace
}  // namespace hetpapi
