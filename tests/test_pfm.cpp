// The event library: PMU scanning/binding (including the ARM MIDR path
// and the legacy single-PMU scan bug), name parsing/encoding, and the
// multiple-default-PMU behaviour of §IV-D.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "pfm/pfmlib.hpp"
#include "pfm/sim_host.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi::pfm {
namespace {

using simkernel::CountKind;
using simkernel::SimKernel;

TEST(EventDb, TablesExposeExpectedAsymmetries) {
  const PmuTable* glc = table_by_name("adl_glc");
  const PmuTable* grt = table_by_name("adl_grt");
  ASSERT_NE(glc, nullptr);
  ASSERT_NE(grt, nullptr);
  EXPECT_NE(glc->find_event("TOPDOWN"), nullptr);
  EXPECT_EQ(grt->find_event("TOPDOWN"), nullptr)
      << "topdown is P-core only (§I-C)";
  EXPECT_NE(grt->find_event("MEM_BOUND_STALLS"), nullptr)
      << "E-core-specific stall event";
  EXPECT_EQ(glc->find_event("MEM_BOUND_STALLS"), nullptr);
}

TEST(EventDb, UmaskLookupIsCaseInsensitive) {
  const PmuTable* glc = table_by_name("adl_glc");
  const EventDesc* event = glc->find_event("inst_retired");
  ASSERT_NE(event, nullptr);
  EXPECT_NE(event->find_umask("any"), nullptr);
  EXPECT_EQ(event->find_umask("bogus"), nullptr);
}

class PfmRaptorLakeTest : public ::testing::Test {
 protected:
  PfmRaptorLakeTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), host_(&kernel_) {
    EXPECT_TRUE(lib_.initialize(host_).is_ok());
  }
  SimKernel kernel_;
  SimHost host_;
  PfmLibrary lib_;
};

TEST_F(PfmRaptorLakeTest, ActivatesBothCorePmusPlusRaplAndUncore) {
  EXPECT_NE(lib_.find_pmu("adl_glc"), nullptr);
  EXPECT_NE(lib_.find_pmu("adl_grt"), nullptr);
  EXPECT_NE(lib_.find_pmu("rapl"), nullptr);
  EXPECT_NE(lib_.find_pmu("unc_imc_0"), nullptr);
  EXPECT_NE(lib_.find_pmu("perf"), nullptr);
  EXPECT_EQ(lib_.find_pmu("arm_a72"), nullptr);
}

TEST_F(PfmRaptorLakeTest, DefaultPmusRankPCoreFirst) {
  const auto defaults = lib_.default_pmus();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0]->table->pfm_name, "adl_glc");
  EXPECT_EQ(defaults[1]->table->pfm_name, "adl_grt");
}

TEST_F(PfmRaptorLakeTest, EncodePrefixedEventAndUmask) {
  const auto enc = lib_.encode("adl_grt::INST_RETIRED:ANY");
  ASSERT_TRUE(enc.has_value()) << enc.status().to_string();
  EXPECT_EQ(enc->pmu_name, "adl_grt");
  EXPECT_EQ(enc->kind, CountKind::kInstructions);
  EXPECT_EQ(enc->canonical_name, "adl_grt::INST_RETIRED:ANY");
  const auto* atom = kernel_.pmus().find_by_name("cpu_atom");
  EXPECT_EQ(enc->perf_type, atom->type_id);
}

TEST_F(PfmRaptorLakeTest, EncodeUnprefixedSearchesDefaultsInOrder) {
  const auto enc = lib_.encode("INST_RETIRED:ANY");
  ASSERT_TRUE(enc.has_value());
  EXPECT_EQ(enc->pmu_name, "adl_glc") << "P core searched first";
  // An event that only the E-core table has falls through to it.
  const auto grt_only = lib_.encode("MEM_BOUND_STALLS");
  ASSERT_TRUE(grt_only.has_value());
  EXPECT_EQ(grt_only->pmu_name, "adl_grt");
}

TEST_F(PfmRaptorLakeTest, EncodeErrors) {
  EXPECT_EQ(lib_.encode("nope::INST_RETIRED").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(lib_.encode("adl_glc::NO_SUCH_EVENT").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(lib_.encode("adl_glc::INST_RETIRED:BADMASK").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(lib_.encode("adl_glc::LONGEST_LAT_CACHE").status().code(),
            StatusCode::kInvalidArgument)
      << "umask required";
  EXPECT_EQ(lib_.encode("TOTALLY_UNKNOWN").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PfmRaptorLakeTest, CaseInsensitiveNames) {
  const auto enc = lib_.encode("ADL_GLC::inst_retired:any");
  ASSERT_TRUE(enc.has_value());
  EXPECT_EQ(enc->canonical_name, "adl_glc::INST_RETIRED:ANY");
}

TEST_F(PfmRaptorLakeTest, EventNamesEnumerateUmaskExpansions) {
  const auto names = lib_.event_names(*lib_.find_pmu("adl_glc"));
  EXPECT_GT(names.size(), 10u);
  EXPECT_NE(std::find(names.begin(), names.end(),
                      "adl_glc::LONGEST_LAT_CACHE:MISS"),
            names.end());
}

TEST_F(PfmRaptorLakeTest, LegacySingleDefaultModeFailsOnHybrid) {
  PfmLibrary legacy;
  PfmLibrary::Config config;
  config.multiple_default_pmus = false;
  ASSERT_TRUE(legacy.initialize(host_, config).is_ok());
  // Prefixed lookups still work...
  EXPECT_TRUE(legacy.encode("adl_glc::INST_RETIRED:ANY").has_value());
  // ...but unprefixed ones hit the multiple-default breakage (§IV-D).
  EXPECT_EQ(legacy.encode("INST_RETIRED:ANY").status().code(),
            StatusCode::kConflict);
}

TEST(PfmArm, BindsClustersByMidrDespiteAmbiguousDevicetreeNames) {
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  SimHost host(&kernel);
  PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok());
  // Both PMUs are named armv8_pmuv3_N in sysfs; binding must go through
  // the MIDR of the covered cpus.
  const ActivePmu* a72 = lib.find_pmu("arm_a72");
  const ActivePmu* a53 = lib.find_pmu("arm_a53");
  ASSERT_NE(a72, nullptr);
  ASSERT_NE(a53, nullptr);
  EXPECT_EQ(a72->cpus, (std::vector<int>{4, 5}));
  EXPECT_EQ(a53->cpus, (std::vector<int>{0, 1, 2, 3}));
  const auto defaults = lib.default_pmus();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0]->table->pfm_name, "arm_a72") << "big ranks first";
}

TEST(PfmArm, LegacyScanSeesOnlyOneCluster) {
  // §IV-C: pre-patch libpfm4 stopped after the first ARM PMU, leaving
  // one big.LITTLE cluster without events.
  SimKernel kernel(cpumodel::orangepi800_rk3399());
  SimHost host(&kernel);
  PfmLibrary lib;
  PfmLibrary::Config config;
  config.arm_multi_pmu_patch = false;
  ASSERT_TRUE(lib.initialize(host, config).is_ok());
  int core_pmus = 0;
  for (const ActivePmu& pmu : lib.pmus()) {
    if (pmu.is_core) ++core_pmus;
  }
  EXPECT_EQ(core_pmus, 1);
  // Scanned in sysfs order: armv8_pmuv3_0 (the A53 cluster) wins.
  EXPECT_NE(lib.find_pmu("arm_a53"), nullptr);
  EXPECT_EQ(lib.find_pmu("arm_a72"), nullptr);
}

TEST(PfmHomogeneous, TraditionalMachineActivatesOneCorePmu) {
  SimKernel kernel(cpumodel::homogeneous_xeon());
  SimHost host(&kernel);
  PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok());
  const auto defaults = lib.default_pmus();
  ASSERT_EQ(defaults.size(), 1u);
  EXPECT_EQ(defaults[0]->table->pfm_name, "skx");
  // Unprefixed lookup works the traditional way.
  EXPECT_TRUE(lib.encode("INST_RETIRED:ANY").has_value());
}

TEST(PfmThreeType, AllThreeClustersBind) {
  SimKernel kernel(cpumodel::arm_three_type());
  SimHost host(&kernel);
  PfmLibrary lib;
  ASSERT_TRUE(lib.initialize(host).is_ok());
  EXPECT_NE(lib.find_pmu("arm_x1"), nullptr);
  EXPECT_NE(lib.find_pmu("arm_a78"), nullptr);
  EXPECT_NE(lib.find_pmu("arm_a55"), nullptr);
  const auto defaults = lib.default_pmus();
  ASSERT_EQ(defaults.size(), 3u);
  EXPECT_EQ(defaults[0]->table->pfm_name, "arm_x1");
  EXPECT_EQ(defaults[2]->table->pfm_name, "arm_a55");
}

TEST(PfmErrors, UninitializedLibraryRefusesEncode) {
  PfmLibrary lib;
  EXPECT_EQ(lib.encode("INST_RETIRED").status().code(),
            StatusCode::kComponent);
}

}  // namespace
}  // namespace hetpapi::pfm
