// The hierarchical aggregation tree, end to end: leaf aggregates ride
// the coalesced shared subscription (so merged values are comparable
// to direct subscriptions BY CONSTRUCTION, which the first test pins
// exactly), node daemons fan SubscribeAggregate out to downstream
// hetpapids and re-export merged per-core-type streams with exact
// hierarchical min/max/avg/sigma composition, and the whole tree
// degrades rather than stalls when a downstream faults or dies.
//
// The chaos suites (named *Chaos* so the sanitizer CI shard picks them
// up) drive a multi-shard node over two-leaf trees where one leaf sits
// behind a FaultInjectingBackend (transient-read, stale-fd,
// fd-pressure): the healthy sibling must keep flowing, merges go
// complete=0 instead of blocking, and every backend's live-fd ledger
// reads zero after shutdown — the leak oracle.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "papi/sim_backend.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/faulty_transport.hpp"
#include "service/proto.hpp"
#include "service/stats_report.hpp"
#include "service/transport.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::FaultInjectingBackend;
using papi::FaultProfile;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;
using namespace hetpapi::service;

/// One leaf hetpapid with its own kernel, (optionally fault-injected)
/// backend, and loopback transport.
struct Leaf {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> sim;
  std::unique_ptr<FaultInjectingBackend> injector;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<Daemon> daemon;
  /// Two measured threads: distinct subscription specs need distinct
  /// targets (one running EventSet per component per thread).
  std::vector<Tid> tids;
  Tid tid{};

  Status init(const std::string& fault_profile = "",
              std::uint64_t fault_seed = 1, DaemonConfig dconfig = {}) {
    kernel = std::make_unique<SimKernel>(cpumodel::raptor_lake_i7_13700());
    sim = std::make_unique<SimBackend>(kernel.get());
    papi::Backend* backend = sim.get();
    if (!fault_profile.empty()) {
      auto profile = FaultProfile::named(fault_profile);
      if (!profile.has_value()) return profile.status();
      injector = std::make_unique<FaultInjectingBackend>(sim.get(), *profile,
                                                         fault_seed);
      backend = injector.get();
    }
    for (int cpu = 0; cpu < 2; ++cpu) {
      tids.push_back(kernel->spawn(
          std::make_shared<FixedWorkProgram>(PhaseSpec{}, 4'000'000'000ull),
          CpuSet::of({cpu})));
    }
    tid = tids[0];
    transport = std::make_unique<LoopbackTransport>();
    daemon = std::make_unique<Daemon>(kernel.get(), backend,
                                      std::move(dconfig));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }

  void tick(int ms) {
    kernel->run_for(std::chrono::milliseconds(ms));
    daemon->tick();
  }

  std::size_t open_fds() const {
    return injector != nullptr ? injector->open_fd_count()
                               : sim->open_fd_count();
  }
};

/// An aggregator node: its own daemon (and backing kernel for the
/// library) with every leaf adopted as a downstream.
struct Node {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> sim;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<Daemon> daemon;

  Status init(const std::vector<Leaf*>& leaves, DaemonConfig dconfig = {}) {
    kernel = std::make_unique<SimKernel>(cpumodel::raptor_lake_i7_13700());
    sim = std::make_unique<SimBackend>(kernel.get());
    transport = std::make_unique<LoopbackTransport>();
    daemon = std::make_unique<Daemon>(kernel.get(), sim.get(),
                                      std::move(dconfig));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    for (Leaf* leaf : leaves) {
      daemon->add_downstream(
          std::make_unique<Client>(leaf->transport->connect()));
    }
    return Status::ok();
  }

  Client connect(const std::string& name) {
    Client client(transport->connect());
    EXPECT_TRUE(client.hello(name).is_ok()) << name;
    return client;
  }
};

AggSubscribe agg_spec(std::int64_t target,
                      std::vector<std::string> events = {"PAPI_TOT_INS",
                                                         "PAPI_TOT_CYC"}) {
  AggSubscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = target;
  spec.events = std::move(events);
  return spec;
}

// --- exact-truth: aggregate == direct --------------------------------------

TEST(ServiceAggregator, LeafAggregateMatchesDirectSubscriptionExactly) {
  // On a leaf the aggregate rider shares the direct subscription's
  // coalesced EventSet, so the sums, the per-core-type parts, and the
  // degenerate count=1 statistics must equal the direct stream value
  // for value — the acceptance oracle for the whole tree.
  Leaf leaf;
  ASSERT_TRUE(leaf.init().is_ok());
  Client direct(leaf.transport->connect());
  ASSERT_TRUE(direct.hello("direct").is_ok());
  Client aggregated(leaf.transport->connect());
  ASSERT_TRUE(aggregated.hello("aggregated").is_ok());

  Subscribe qualified;
  qualified.target_kind = TargetKind::kThread;
  qualified.target = leaf.tid;
  qualified.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  qualified.qualified = 1;
  auto direct_sub = direct.subscribe(qualified);
  ASSERT_TRUE(direct_sub.has_value()) << direct_sub.status().message();

  auto agg_sub = aggregated.subscribe_aggregate(agg_spec(leaf.tid));
  ASSERT_TRUE(agg_sub.has_value()) << agg_sub.status().message();
  EXPECT_EQ(agg_sub->fanin, 1u);
  // Coalesced: both riders share one server-side EventSet.
  EXPECT_EQ(agg_sub->shared_key_id, direct_sub->shared_key_id);
  EXPECT_EQ(leaf.daemon->distinct_subscription_count(), 1u);

  constexpr int kTicks = 5;
  for (int t = 0; t < kTicks; ++t) leaf.tick(10);

  const auto direct_samples = direct.take_samples();
  (void)aggregated.pump_once();
  const auto agg_samples = aggregated.take_agg_samples();
  ASSERT_EQ(direct_samples.size(), static_cast<std::size_t>(kTicks));
  ASSERT_EQ(agg_samples.size(), static_cast<std::size_t>(kTicks));

  for (int t = 0; t < kTicks; ++t) {
    const WireSample& d = direct_samples[static_cast<std::size_t>(t)];
    const AggSample& a = agg_samples[static_cast<std::size_t>(t)];
    EXPECT_EQ(a.tick, d.tick);
    EXPECT_EQ(a.complete, 1);
    ASSERT_EQ(a.slots.size(), d.values.size());
    for (std::size_t s = 0; s < a.slots.size(); ++s) {
      const SlotStats& slot = a.slots[s];
      EXPECT_EQ(slot.sum, d.values[s]);
      EXPECT_EQ(slot.min, d.values[s]);
      EXPECT_EQ(slot.max, d.values[s]);
      EXPECT_EQ(slot.count, 1u);
      EXPECT_DOUBLE_EQ(slot.avg, static_cast<double>(d.values[s]));
      EXPECT_EQ(slot.stddev, 0.0);
      // Same parts as the direct qualified stream, label-sorted.
      std::map<std::string, long long> expected(d.parts[s].begin(),
                                                d.parts[s].end());
      std::vector<std::pair<std::string, long long>> sorted(expected.begin(),
                                                            expected.end());
      EXPECT_EQ(slot.per_core_type, sorted);
      long long part_sum = 0;
      for (const auto& [label, value] : slot.per_core_type) part_sum += value;
      EXPECT_EQ(part_sum, slot.sum);
    }
  }
}

TEST(ServiceAggregator, TwoLevelTreeComposesExactHierarchicalStats) {
  // Two leaves advanced at different rates -> distinct leaf values, so
  // the merged min/max/avg/sigma are all non-degenerate and checkable
  // against the direct per-leaf streams in closed form.
  Leaf fast, slow;
  ASSERT_TRUE(fast.init().is_ok());
  ASSERT_TRUE(slow.init().is_ok());
  ASSERT_EQ(fast.tid, slow.tid) << "deterministic spawn order";
  Node node;
  ASSERT_TRUE(node.init({&fast, &slow}).is_ok());
  ASSERT_EQ(node.daemon->downstream_count(), 2u);
  ASSERT_EQ(node.daemon->live_downstream_count(), 2u);

  // Direct qualified riders on each leaf: the exact-truth reference.
  Client ref_fast(fast.transport->connect());
  ASSERT_TRUE(ref_fast.hello("ref-fast").is_ok());
  Client ref_slow(slow.transport->connect());
  ASSERT_TRUE(ref_slow.hello("ref-slow").is_ok());
  Subscribe qualified;
  qualified.target_kind = TargetKind::kThread;
  qualified.target = fast.tid;
  qualified.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  qualified.qualified = 1;
  ASSERT_TRUE(ref_fast.subscribe(qualified).has_value());
  ASSERT_TRUE(ref_slow.subscribe(qualified).has_value());

  Client watcher = node.connect("watcher");
  auto sub = watcher.subscribe_aggregate(agg_spec(fast.tid));
  ASSERT_TRUE(sub.has_value()) << sub.status().message();
  EXPECT_EQ(sub->fanin, 2u);
  EXPECT_EQ(node.daemon->aggregate_subscription_count(), 1u);

  constexpr int kTicks = 4;
  for (int t = 0; t < kTicks; ++t) {
    fast.tick(20);  // twice the work per tick
    slow.tick(10);
    node.daemon->tick();
  }

  const auto fast_samples = ref_fast.take_samples();
  const auto slow_samples = ref_slow.take_samples();
  (void)watcher.pump_once();
  const auto merged = watcher.take_agg_samples();
  ASSERT_EQ(fast_samples.size(), static_cast<std::size_t>(kTicks));
  ASSERT_EQ(slow_samples.size(), static_cast<std::size_t>(kTicks));
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kTicks));

  for (int t = 0; t < kTicks; ++t) {
    const WireSample& a = fast_samples[static_cast<std::size_t>(t)];
    const WireSample& b = slow_samples[static_cast<std::size_t>(t)];
    const AggSample& m = merged[static_cast<std::size_t>(t)];
    EXPECT_EQ(m.complete, 1) << "tick " << t;
    ASSERT_EQ(m.slots.size(), 2u);
    for (std::size_t s = 0; s < m.slots.size(); ++s) {
      const long long va = a.values[s];
      const long long vb = b.values[s];
      const SlotStats& slot = m.slots[s];
      // THE acceptance criterion: merged sums equal the sum of what
      // direct subscriptions observe, exactly.
      EXPECT_EQ(slot.sum, va + vb);
      EXPECT_EQ(slot.min, std::min(va, vb));
      EXPECT_EQ(slot.max, std::max(va, vb));
      EXPECT_EQ(slot.count, 2u);
      const double mean = static_cast<double>(va + vb) / 2.0;
      EXPECT_DOUBLE_EQ(slot.avg, mean);
      // Two count=1 children: sigma = |va - vb| / 2, in closed form.
      EXPECT_NEAR(slot.stddev,
                  std::abs(static_cast<double>(va) - static_cast<double>(vb)) /
                      2.0,
                  1e-6 * (1.0 + slot.stddev));
      EXPECT_GT(slot.stddev, 0.0) << "leaves diverge by construction";
      // Per-core-type totals merge additively by label.
      std::map<std::string, long long> expected;
      for (const auto& [label, value] : a.parts[s]) expected[label] += value;
      for (const auto& [label, value] : b.parts[s]) expected[label] += value;
      std::vector<std::pair<std::string, long long>> sorted(expected.begin(),
                                                            expected.end());
      EXPECT_EQ(slot.per_core_type, sorted);
    }
  }

  // Wire-level stats surface the tree shape.
  auto stats = watcher.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->downstreams, 2u);
  EXPECT_EQ(stats->agg_subscriptions, 1u);
  EXPECT_EQ(stats->agg_samples_delivered,
            static_cast<std::uint64_t>(kTicks));

  node.daemon->shutdown();
  fast.daemon->shutdown();
  slow.daemon->shutdown();
  EXPECT_EQ(fast.open_fds(), 0u);
  EXPECT_EQ(slow.open_fds(), 0u);
  EXPECT_EQ(node.sim->open_fd_count(), 0u);
}

TEST(ServiceAggregator, SecondRiderCoalescesOnTheNodeAggregate) {
  Leaf leaf;
  ASSERT_TRUE(leaf.init().is_ok());
  Node node;
  ASSERT_TRUE(node.init({&leaf}).is_ok());
  Client a = node.connect("a");
  Client b = node.connect("b");
  auto sub_a = a.subscribe_aggregate(agg_spec(leaf.tid));
  ASSERT_TRUE(sub_a.has_value()) << sub_a.status().message();
  auto sub_b = b.subscribe_aggregate(agg_spec(leaf.tid));
  ASSERT_TRUE(sub_b.has_value());
  // One node-side aggregate, one downstream subscription: the second
  // rider joined instead of re-fanning out.
  EXPECT_EQ(sub_b->shared_key_id, sub_a->shared_key_id);
  EXPECT_NE(sub_b->subscription_id, sub_a->subscription_id);
  EXPECT_EQ(node.daemon->aggregate_subscription_count(), 1u);
  EXPECT_EQ(leaf.daemon->total_subscriber_count(), 1u);

  leaf.tick(10);
  node.daemon->tick();
  (void)a.pump_once();
  (void)b.pump_once();
  const auto samples_a = a.take_agg_samples();
  const auto samples_b = b.take_agg_samples();
  ASSERT_EQ(samples_a.size(), 1u);
  ASSERT_EQ(samples_b.size(), 1u);
  EXPECT_EQ(samples_a[0].subscription_id, sub_a->subscription_id);
  EXPECT_EQ(samples_b[0].subscription_id, sub_b->subscription_id);
  ASSERT_FALSE(samples_a[0].slots.empty());
  EXPECT_EQ(samples_a[0].slots[0].sum, samples_b[0].slots[0].sum);

  // Unsubscribing the first rider keeps the aggregate alive for the
  // second; the last unsubscribe releases the downstream subscription.
  ASSERT_TRUE(a.unsubscribe(sub_a->subscription_id).is_ok());
  EXPECT_EQ(node.daemon->aggregate_subscription_count(), 1u);
  ASSERT_TRUE(b.unsubscribe(sub_b->subscription_id).is_ok());
  EXPECT_EQ(node.daemon->aggregate_subscription_count(), 0u);
  leaf.daemon->poll();
  EXPECT_EQ(leaf.daemon->total_subscriber_count(), 0u);
}

TEST(ServiceAggregator, TelemetryBridgeCarriesSumsPartsAndCompleteness) {
  AggSample sample;
  sample.t_seconds = 1.25;
  sample.complete = 0;
  SlotStats slot;
  slot.sum = 300;
  slot.per_core_type = {{"INST_RETIRED[intel_atom]", 100},
                        {"INST_RETIRED[intel_core]", 200}};
  sample.slots.push_back(slot);
  const telemetry::Sample bridged = to_telemetry_sample(sample);
  EXPECT_DOUBLE_EQ(bridged.t_seconds, 1.25);
  EXPECT_FALSE(bridged.counters_ok);
  ASSERT_EQ(bridged.counters.size(), 1u);
  EXPECT_DOUBLE_EQ(bridged.counters[0], 300.0);
  ASSERT_EQ(bridged.counter_parts.size(), 1u);
  EXPECT_EQ(bridged.counter_parts[0],
            (std::vector<double>{100.0, 200.0}));
}

// --- protocol version compatibility ----------------------------------------

TEST(ServiceAggregator, V1ClientIsServedButAggregateVerbsAreGated) {
  Leaf leaf;
  ASSERT_TRUE(leaf.init().is_ok());
  Client v1(leaf.transport->connect());
  v1.set_hello_version(1);
  ASSERT_TRUE(v1.hello("legacy").is_ok());
  EXPECT_EQ(v1.negotiated_version(), 1u);

  // The v1 surface still works end to end...
  Subscribe spec;
  spec.target_kind = TargetKind::kThread;
  spec.target = leaf.tid;
  spec.events = {"PAPI_TOT_INS"};
  ASSERT_TRUE(v1.subscribe(spec).has_value());
  leaf.tick(10);
  EXPECT_EQ(v1.take_samples().size(), 1u);
  // ...including StatsReply in its exact v1 shape (no v2 tail).
  auto stats = v1.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->shards, 0u);

  // The v2 verb is refused client-side before touching the wire.
  auto refused = v1.subscribe_aggregate(agg_spec(leaf.tid));
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotSupported);
}

// --- determinism across shard counts ---------------------------------------

std::vector<std::vector<std::uint8_t>> run_tree_scenario(std::size_t shards) {
  Leaf fast, slow;
  DaemonConfig leaf_config;
  leaf_config.shards = shards;
  EXPECT_TRUE(fast.init("", 1, leaf_config).is_ok());
  EXPECT_TRUE(slow.init("", 1, leaf_config).is_ok());
  Node node;
  DaemonConfig node_config;
  node_config.shards = shards;
  EXPECT_TRUE(node.init({&fast, &slow}, node_config).is_ok());
  EXPECT_EQ(node.daemon->shard_count(), shards);

  std::vector<Client> watchers;
  for (int i = 0; i < 5; ++i) {
    // Built in two steps: GCC 12's -Wrestrict misfires on the inlined
    // `const char* + std::string&&` concatenation here.
    std::string name = "w";
    name += std::to_string(i);
    watchers.push_back(node.connect(name));
    watchers.back().set_capture_bytes(true);
    // Two distinct aggregates (different targets and events) so the
    // fan-out carries more than one template per tick.
    auto sub = watchers.back().subscribe_aggregate(
        i % 2 == 0 ? agg_spec(fast.tids[0])
                   : agg_spec(fast.tids[1],
                              std::vector<std::string>{"PAPI_TOT_CYC"}));
    EXPECT_TRUE(sub.has_value()) << sub.status().message();
  }
  for (int t = 0; t < 5; ++t) {
    fast.tick(20);
    slow.tick(10);
    node.daemon->tick();
    for (Client& w : watchers) (void)w.pump_once();
  }
  std::vector<std::vector<std::uint8_t>> streams;
  for (Client& w : watchers) streams.push_back(w.captured_bytes());
  return streams;
}

TEST(ServiceAggregator, ByteIdenticalAggregateStreamsAcrossShardCounts) {
  const auto one = run_tree_scenario(1);
  const auto four = run_tree_scenario(4);
  const auto sixteen = run_tree_scenario(16);
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), sixteen.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_FALSE(one[i].empty());
    EXPECT_EQ(one[i], four[i]) << "watcher " << i;
    EXPECT_EQ(one[i], sixteen[i]) << "watcher " << i;
  }
}

// --- chaos: faults and death in the tree -----------------------------------

TEST(ServiceAggregatorChaos, DeadDownstreamDegradesMergesButSiblingsFlow) {
  Leaf healthy, doomed;
  ASSERT_TRUE(healthy.init().is_ok());
  ASSERT_TRUE(doomed.init().is_ok());
  Node node;
  DaemonConfig node_config;
  node_config.shards = 4;  // the multi-shard daemon under chaos
  ASSERT_TRUE(node.init({&healthy, &doomed}, node_config).is_ok());
  Client watcher = node.connect("watcher");
  auto sub = watcher.subscribe_aggregate(agg_spec(healthy.tid));
  ASSERT_TRUE(sub.has_value()) << sub.status().message();
  EXPECT_EQ(sub->fanin, 2u);

  for (int t = 0; t < 3; ++t) {
    healthy.tick(10);
    doomed.tick(10);
    node.daemon->tick();
  }
  (void)watcher.pump_once();
  auto before = watcher.take_agg_samples();
  ASSERT_EQ(before.size(), 3u);
  for (const AggSample& s : before) EXPECT_EQ(s.complete, 1);
  const long long two_leaf_count = before.back().slots[0].count;
  EXPECT_EQ(two_leaf_count, 2);

  // Kill one leaf mid-stream. Its daemon says goodbye; the node marks
  // the link dead and keeps merging the survivor.
  doomed.daemon->shutdown();
  for (int t = 0; t < 3; ++t) {
    healthy.tick(10);
    node.daemon->tick();
  }
  EXPECT_EQ(node.daemon->live_downstream_count(), 1u);
  (void)watcher.pump_once();
  auto after = watcher.take_agg_samples();
  ASSERT_EQ(after.size(), 3u) << "the surviving sibling never stalled";
  for (const AggSample& s : after) {
    EXPECT_EQ(s.complete, 0) << "merges degrade, not block";
    ASSERT_FALSE(s.slots.empty());
    EXPECT_EQ(s.slots[0].count, 1u) << "exactly the survivor contributes";
    EXPECT_GT(s.slots[0].sum, 0);
  }

  node.daemon->shutdown();
  healthy.daemon->shutdown();
  EXPECT_EQ(healthy.open_fds(), 0u);
  EXPECT_EQ(doomed.open_fds(), 0u);
  EXPECT_EQ(node.sim->open_fd_count(), 0u);
}

TEST(ServiceAggregatorChaos, FaultProfilesDegradeGracefullyWithZeroFdLeaks) {
  // One faulting leaf per profile, one healthy sibling, a multi-shard
  // node on top. Whatever the injector does — transient read errors,
  // fds going stale mid-stream, EMFILE at open — the tree must keep
  // serving the healthy side and the ledgers must read zero afterwards.
  for (const char* profile : {"transient-read", "stale-fd", "fd-pressure"}) {
    SCOPED_TRACE(profile);
    Leaf faulty, healthy;
    ASSERT_TRUE(faulty.init(profile, /*fault_seed=*/7).is_ok());
    ASSERT_TRUE(healthy.init().is_ok());
    Node node;
    DaemonConfig node_config;
    node_config.shards = 4;
    ASSERT_TRUE(node.init({&faulty, &healthy}, node_config).is_ok());

    Client watcher = node.connect("watcher");
    auto sub = watcher.subscribe_aggregate(agg_spec(healthy.tid));
    // Under fd-pressure the faulty leg's subscribe may fail outright;
    // the aggregate must still form over the surviving leg.
    ASSERT_TRUE(sub.has_value()) << sub.status().message();
    EXPECT_GE(sub->fanin, 1u);

    constexpr int kTicks = 24;
    std::size_t received = 0;
    for (int t = 0; t < kTicks; ++t) {
      faulty.tick(10);
      healthy.tick(10);
      node.daemon->tick();
      (void)watcher.pump_once();
      for (const AggSample& s : watcher.take_agg_samples()) {
        ++received;
        ASSERT_FALSE(s.slots.empty());
        // The healthy sibling's contribution is always present.
        EXPECT_GE(s.slots[0].count, 1u);
        EXPECT_GT(s.slots[0].sum, 0);
      }
    }
    // Graceful degradation: the stream never stalls outright.
    EXPECT_GE(received, static_cast<std::size_t>(kTicks) - 2);

    node.daemon->shutdown();
    faulty.daemon->shutdown();
    healthy.daemon->shutdown();
    EXPECT_EQ(faulty.open_fds(), 0u) << "leaked: "
        << testing::PrintToString(faulty.injector->leaked_fds());
    EXPECT_EQ(faulty.sim->open_fd_count(), 0u);
    EXPECT_EQ(healthy.open_fds(), 0u);
    EXPECT_EQ(node.sim->open_fd_count(), 0u);
  }
}

TEST(ServiceAggregatorChaos, MultiShardLeafSoakUnderMixedFaultsLeaksNothing) {
  // The sharded fan-out path itself under the mixed fault profile:
  // many riders (direct and aggregate) on one multi-shard leaf daemon,
  // ticked through fault bursts. Counts may degrade; fds may not leak
  // and the daemon may not crash or stall.
  Leaf leaf;
  DaemonConfig dconfig;
  dconfig.shards = 8;
  dconfig.encode_threads = 2;
  ASSERT_TRUE(leaf.init("mixed", /*fault_seed=*/21, dconfig).is_ok());

  std::vector<std::unique_ptr<Client>> riders;
  std::size_t subscribed = 0;
  for (int i = 0; i < 24; ++i) {
    auto c = std::make_unique<Client>(leaf.transport->connect());
    ASSERT_TRUE(c->hello("rider" + std::to_string(i)).is_ok());
    if (i % 3 == 0) {
      subscribed += c->subscribe_aggregate(agg_spec(leaf.tid)).has_value();
    } else {
      Subscribe spec;
      spec.target_kind = TargetKind::kThread;
      spec.target = leaf.tid;
      spec.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
      spec.qualified = static_cast<std::uint8_t>(i % 2);
      subscribed += c->subscribe(spec).has_value();
    }
    riders.push_back(std::move(c));
  }
  EXPECT_GT(subscribed, 0u);

  for (int t = 0; t < 32; ++t) {
    leaf.tick(5);
    for (auto& c : riders) {
      if (!c->connected()) continue;
      (void)c->pump_once();
      (void)c->take_samples();
      (void)c->take_agg_samples();
    }
  }

  leaf.daemon->shutdown();
  EXPECT_EQ(leaf.open_fds(), 0u) << "leaked: "
      << testing::PrintToString(leaf.injector->leaked_fds());
  EXPECT_EQ(leaf.sim->open_fd_count(), 0u);
  EXPECT_GT(leaf.injector->stats().total_injected(), 0u)
      << "the profile actually fired";
}

// --- self-healing: severed legs re-dial and merges reconverge ---------------

/// Node wired by hand so each downstream leg dials through its own
/// FaultyTransport and a factory that refuses while an outage flag is
/// up — the scripted kill-and-restore the self-heal machinery must
/// survive.
struct HealableNode {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<SimBackend> sim;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<Daemon> daemon;

  Status init(DaemonConfig dconfig = {}) {
    kernel = std::make_unique<SimKernel>(cpumodel::raptor_lake_i7_13700());
    sim = std::make_unique<SimBackend>(kernel.get());
    transport = std::make_unique<LoopbackTransport>();
    daemon = std::make_unique<Daemon>(kernel.get(), sim.get(),
                                      std::move(dconfig));
    if (Status s = daemon->init(); !s.is_ok()) return s;
    daemon->add_listener(transport->listener());
    transport->set_pump([this] { daemon->poll(); });
    return Status::ok();
  }

  Status add_leg(Leaf* leaf, FaultyTransport* faulty, const bool* down) {
    ConnectionFactory dial = [leaf, faulty,
                              down]() -> Expected<std::unique_ptr<Connection>> {
      if (down != nullptr && *down) {
        return make_error(StatusCode::kNotRunning, "leaf unreachable (outage)");
      }
      return faulty->wrap(leaf->transport->connect());
    };
    auto first = dial();
    if (!first.has_value()) return first.status();
    daemon->add_downstream(std::make_unique<Client>(std::move(*first)), dial);
    return Status::ok();
  }

  Client connect(const std::string& name) {
    Client client(transport->connect());
    EXPECT_TRUE(client.hello(name).is_ok()) << name;
    return client;
  }
};

TEST(ServiceSelfHealChaos, SeveredTreeLegsRedialAndMergesReconvergeExactly) {
  Leaf fast, slow;
  ASSERT_TRUE(fast.init().is_ok());
  ASSERT_TRUE(slow.init().is_ok());
  ASSERT_EQ(fast.tid, slow.tid) << "deterministic spawn order";

  FaultyTransport fast_link(*TransportFaultProfile::named("none"), 11);
  FaultyTransport slow_link(*TransportFaultProfile::named("none"), 12);
  bool fast_down = false, slow_down = false;

  HealableNode node;
  DaemonConfig node_config;
  node_config.shards = 4;
  ASSERT_TRUE(node.init(node_config).is_ok());
  ASSERT_TRUE(node.add_leg(&fast, &fast_link, &fast_down).is_ok());
  ASSERT_TRUE(node.add_leg(&slow, &slow_link, &slow_down).is_ok());
  ASSERT_EQ(node.daemon->downstream_count(), 2u);

  // Direct qualified riders on each leaf keep the coalesced EventSets
  // alive across leg outages, so post-heal downstream values stay
  // comparable to the direct streams — the exact-truth reference.
  Client ref_fast(fast.transport->connect());
  ASSERT_TRUE(ref_fast.hello("ref-fast").is_ok());
  Client ref_slow(slow.transport->connect());
  ASSERT_TRUE(ref_slow.hello("ref-slow").is_ok());
  Subscribe qualified;
  qualified.target_kind = TargetKind::kThread;
  qualified.target = fast.tid;
  qualified.events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  qualified.qualified = 1;
  ASSERT_TRUE(ref_fast.subscribe(qualified).has_value());
  ASSERT_TRUE(ref_slow.subscribe(qualified).has_value());

  Client watcher = node.connect("watcher");
  auto sub = watcher.subscribe_aggregate(agg_spec(fast.tid));
  ASSERT_TRUE(sub.has_value()) << sub.status().message();
  EXPECT_EQ(sub->fanin, 2u);

  // One step = both leaves tick (at different rates, so their values
  // diverge and a merged sum identifies its contributors), then the
  // node. Every merged sample is checked against the direct streams:
  // count==2 must equal fast+slow exactly, count==1 must equal exactly
  // one of them, count==0 must be an all-zero placeholder.
  bool saw_complete = false;
  auto step = [&]() {
    fast.tick(20);
    slow.tick(10);
    node.daemon->tick();
    const auto fs = ref_fast.take_samples();
    const auto ss = ref_slow.take_samples();
    ASSERT_EQ(fs.size(), 1u);
    ASSERT_EQ(ss.size(), 1u);
    (void)watcher.pump_once();
    const auto merged = watcher.take_agg_samples();
    ASSERT_LE(merged.size(), 1u);
    saw_complete = false;
    for (const AggSample& m : merged) {
      ASSERT_EQ(m.slots.size(), 2u);
      const auto count = m.slots[0].count;
      bool is_fast = true, is_slow = true, is_both = true;
      for (std::size_t s = 0; s < m.slots.size(); ++s) {
        const long long vf = fs[0].values[s];
        const long long vs = ss[0].values[s];
        is_fast = is_fast && m.slots[s].sum == vf;
        is_slow = is_slow && m.slots[s].sum == vs;
        is_both = is_both && m.slots[s].sum == vf + vs;
        EXPECT_EQ(m.slots[s].count, count) << "slot counts agree";
      }
      if (count == 2) {
        EXPECT_TRUE(is_both) << "merged sum != fast + slow, exactly";
        EXPECT_EQ(m.complete, 1);
        saw_complete = m.complete == 1;
      } else if (count == 1) {
        EXPECT_TRUE(is_fast || is_slow)
            << "a lone contribution must equal one direct stream exactly";
        EXPECT_EQ(m.complete, 0);
      } else {
        EXPECT_EQ(count, 0u);
        EXPECT_EQ(m.complete, 0);
      }
    }
  };
  auto recover_until_complete = [&](int budget) {
    for (int i = 0; i < budget && !saw_complete; ++i) step();
    EXPECT_TRUE(saw_complete) << "merges never reconverged to complete=1";
  };

  // Healthy baseline: every step merges both legs, exactly.
  for (int t = 0; t < 3; ++t) {
    step();
    EXPECT_TRUE(saw_complete) << "healthy step " << t;
  }

  // Kill the fast leg: the sibling keeps flowing, merges degrade to
  // exactly the slow direct stream, never stall, never mix in stale
  // pre-outage fast values.
  fast_down = true;
  fast_link.sever_all();
  for (int t = 0; t < 3; ++t) {
    step();
    EXPECT_FALSE(saw_complete) << "fast leg is down";
  }
  // Restore it: the node's backoff re-dial heals the leg and merges
  // reconverge to complete=1 with exact two-leg sums.
  fast_down = false;
  recover_until_complete(20);
  EXPECT_GE(node.daemon->stats().downstream_reheals, 1u);

  // Same kill-and-restore for the slow leg.
  slow_down = true;
  slow_link.sever_all();
  for (int t = 0; t < 3; ++t) {
    step();
    EXPECT_FALSE(saw_complete) << "slow leg is down";
  }
  slow_down = false;
  recover_until_complete(20);
  EXPECT_GE(node.daemon->stats().downstream_reheals, 2u);

  // Total outage: both legs die, the merge stream must degrade (or go
  // quiet) without crashing or stalling the daemon, then heal fully.
  fast_down = slow_down = true;
  fast_link.sever_all();
  slow_link.sever_all();
  for (int t = 0; t < 3; ++t) {
    step();
    EXPECT_FALSE(saw_complete) << "everything is down";
  }
  fast_down = slow_down = false;
  recover_until_complete(30);
  EXPECT_GE(node.daemon->stats().downstream_reheals, 4u);
  EXPECT_GE(node.daemon->stats().reconnects, 4u);

  // Post-heal steady state: exact two-leg merges, every step.
  for (int t = 0; t < 3; ++t) {
    step();
    EXPECT_TRUE(saw_complete) << "post-heal step " << t;
  }

  // Teardown oracles: zero leaked fds on every backend, zero wrapped
  // endpoints still open once the node's downstream clients are gone.
  node.daemon->shutdown();
  fast.daemon->shutdown();
  slow.daemon->shutdown();
  EXPECT_EQ(fast.open_fds(), 0u);
  EXPECT_EQ(slow.open_fds(), 0u);
  EXPECT_EQ(node.sim->open_fd_count(), 0u);
  node.daemon.reset();
  EXPECT_EQ(fast_link.open_connection_count(), 0u);
  EXPECT_EQ(slow_link.open_connection_count(), 0u);
}

TEST(ServiceSelfHealChaos, MixedWireAndBackendFaultsSoakCleanly) {
  // The full gauntlet: one leaf's backend injects transient read
  // faults while BOTH tree legs run through the mixed wire profile
  // (short/zero writes, EAGAIN bursts, random disconnects, half-closes,
  // stalls). The tree must keep making progress — severed legs re-dial
  // under backoff — and every ledger must read clean afterwards.
  Leaf flaky, healthy;
  ASSERT_TRUE(flaky.init("transient-read", /*fault_seed=*/7).is_ok());
  ASSERT_TRUE(healthy.init().is_ok());

  FaultyTransport links(*TransportFaultProfile::named("mixed"), 29);
  HealableNode node;
  DaemonConfig node_config;
  node_config.shards = 4;
  ASSERT_TRUE(node.init(node_config).is_ok());
  ASSERT_TRUE(node.add_leg(&flaky, &links, nullptr).is_ok());
  ASSERT_TRUE(node.add_leg(&healthy, &links, nullptr).is_ok());

  Client watcher = node.connect("watcher");
  auto sub = watcher.subscribe_aggregate(agg_spec(healthy.tid));
  ASSERT_TRUE(sub.has_value()) << sub.status().message();

  constexpr int kSteps = 40;
  std::size_t received = 0;
  for (int t = 0; t < kSteps; ++t) {
    flaky.tick(10);
    healthy.tick(10);
    node.daemon->tick();
    (void)watcher.pump_once();
    for (const AggSample& m : watcher.take_agg_samples()) {
      ++received;
      ASSERT_FALSE(m.slots.empty());
    }
  }
  // Progress, not perfection: wire and backend faults may cost some
  // ticks, but the stream never stalls outright.
  EXPECT_GE(received, static_cast<std::size_t>(kSteps) / 2);
  EXPECT_GT(links.total_injected(), 0u) << "the wire profile actually fired";

  node.daemon->shutdown();
  flaky.daemon->shutdown();
  healthy.daemon->shutdown();
  EXPECT_EQ(flaky.open_fds(), 0u) << "leaked: "
      << testing::PrintToString(flaky.injector->leaked_fds());
  EXPECT_EQ(flaky.sim->open_fd_count(), 0u);
  EXPECT_EQ(healthy.open_fds(), 0u);
  EXPECT_EQ(node.sim->open_fd_count(), 0u);
  node.daemon.reset();
  EXPECT_EQ(links.open_connection_count(), 0u);
}

}  // namespace
}  // namespace hetpapi
