// The perf user page and its seqlock reader (§V-5): the simulated
// kernel publishes one page per core-PMU event with the seqlock writer
// protocol, and papi::read_user_page must return exactly what the fd
// path returns — or report precisely why it cannot (not resident, no
// rdpmc capability, torn window) — never a value mixed across writer
// epochs.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/user_page_read.hpp"
#include "simkernel/kernel.hpp"
#include "simkernel/perf_abi.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::UserPageReadResult;
using papi::UserPageSample;
using papi::read_user_page;
using simkernel::CountKind;
using simkernel::CpuSet;
using simkernel::PerfEventAttr;
using simkernel::PerfIoctl;
using simkernel::PerfUserPage;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

PerfEventAttr attr_for(std::uint32_t type, CountKind kind,
                       bool disabled = false) {
  PerfEventAttr attr;
  attr.type = type;
  attr.config = static_cast<std::uint64_t>(kind);
  attr.disabled = disabled;
  return attr;
}

class UserPageTest : public ::testing::Test {
 protected:
  explicit UserPageTest(SimKernel::Config config = {})
      : kernel_(cpumodel::raptor_lake_i7_13700(), config) {
    const auto* p = kernel_.pmus().find_by_name("cpu_core");
    const auto* e = kernel_.pmus().find_by_name("cpu_atom");
    EXPECT_NE(p, nullptr);
    EXPECT_NE(e, nullptr);
    p_type_ = p->type_id;
    e_type_ = e->type_id;
  }

  Tid spawn_work(std::uint64_t instructions, const CpuSet& affinity) {
    PhaseSpec phase;
    return kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions), affinity);
  }

  SimKernel kernel_;
  std::uint32_t p_type_ = 0;
  std::uint32_t e_type_ = 0;
};

TEST_F(UserPageTest, PageReadMatchesFdRead) {
  const Tid tid = spawn_work(50'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_TRUE(page.has_value());
  kernel_.run_for(std::chrono::milliseconds(20));

  UserPageSample sample;
  ASSERT_EQ(read_user_page(**page, sample), UserPageReadResult::kOk);
  auto via_fd = kernel_.perf_read(*fd);
  ASSERT_TRUE(via_fd.has_value());
  EXPECT_EQ(sample.value, via_fd->value);
  EXPECT_EQ(sample.time_enabled_ns, via_fd->time_enabled_ns);
  EXPECT_EQ(sample.time_running_ns, via_fd->time_running_ns);
  EXPECT_GT(sample.value, 0u);
}

TEST_F(UserPageTest, PageTracksCountAcrossTime) {
  const Tid tid = spawn_work(500'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_TRUE(page.has_value());

  std::uint64_t last = 0;
  for (int step = 0; step < 5; ++step) {
    kernel_.run_for(std::chrono::milliseconds(10));
    UserPageSample sample;
    ASSERT_EQ(read_user_page(**page, sample), UserPageReadResult::kOk);
    EXPECT_EQ(sample.value, kernel_.perf_read(*fd)->value)
        << "page and fd disagree at step " << step;
    EXPECT_GE(sample.value, last) << "counter went backwards";
    last = sample.value;
  }
}

TEST_F(UserPageTest, DisabledEventIsNotResident) {
  const Tid tid = spawn_work(50'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_TRUE(page.has_value());
  kernel_.run_for(std::chrono::milliseconds(10));

  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kDisable).is_ok());
  UserPageSample sample;
  EXPECT_EQ(read_user_page(**page, sample),
            UserPageReadResult::kNotResident);

  // Re-enabling restores the fast path, still agreeing with the fd.
  ASSERT_TRUE(kernel_.perf_ioctl(*fd, PerfIoctl::kEnable).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(read_user_page(**page, sample), UserPageReadResult::kOk);
  EXPECT_EQ(sample.value, kernel_.perf_read(*fd)->value);
}

TEST_F(UserPageTest, MigrationToForeignCoreTypeVacatesPage) {
  // A cpu_core event on a thread that migrates to an E core: the fd
  // read still returns the accumulated count, but the page must report
  // not-resident (index 0) so the reader falls back.
  const Tid tid = spawn_work(500'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_TRUE(page.has_value());
  kernel_.run_for(std::chrono::milliseconds(10));

  UserPageSample sample;
  ASSERT_EQ(read_user_page(**page, sample), UserPageReadResult::kOk);
  const std::uint64_t before = sample.value;
  EXPECT_GT(before, 0u);

  ASSERT_TRUE(kernel_.set_affinity(tid, CpuSet::of({16})).is_ok());  // E core
  kernel_.run_for(std::chrono::milliseconds(10));
  EXPECT_EQ(read_user_page(**page, sample),
            UserPageReadResult::kNotResident);
  auto via_fd = kernel_.perf_read(*fd);
  ASSERT_TRUE(via_fd.has_value());
  EXPECT_GE(via_fd->value, before) << "fd fallback must still serve";

  // Migrating back re-publishes the page.
  ASSERT_TRUE(kernel_.set_affinity(tid, CpuSet::of({0})).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  ASSERT_EQ(read_user_page(**page, sample), UserPageReadResult::kOk);
  EXPECT_EQ(sample.value, kernel_.perf_read(*fd)->value);
}

TEST_F(UserPageTest, NonCorePmuHasNoUserPage) {
  const auto* rapl = kernel_.pmus().find_by_name("power");
  ASSERT_NE(rapl, nullptr);
  auto fd = kernel_.perf_event_open(
      attr_for(rapl->type_id, CountKind::kEnergyPkgUj), -1, 0, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_FALSE(page.has_value());
  EXPECT_EQ(page.status().code(), StatusCode::kNotSupported);
}

TEST_F(UserPageTest, BadFdRejected) {
  auto page = kernel_.perf_mmap_user_page(12345);
  ASSERT_FALSE(page.has_value());
  EXPECT_EQ(page.status().code(), StatusCode::kInvalidArgument);
}

class UserPageNoRdpmcTest : public UserPageTest {
 protected:
  static SimKernel::Config no_rdpmc_config() {
    SimKernel::Config config;
    config.perf.user_rdpmc = false;  // /sys/devices/cpu/rdpmc = 0
    return config;
  }
  UserPageNoRdpmcTest() : UserPageTest(no_rdpmc_config()) {}
};

TEST_F(UserPageNoRdpmcTest, CapabilityOffReportsNoRdpmc) {
  const Tid tid = spawn_work(50'000'000, CpuSet::of({0}));
  auto fd = kernel_.perf_event_open(
      attr_for(p_type_, CountKind::kInstructions), tid, -1, -1);
  ASSERT_TRUE(fd.has_value());
  auto page = kernel_.perf_mmap_user_page(*fd);
  ASSERT_TRUE(page.has_value()) << "the page still maps; only the cap is off";
  kernel_.run_for(std::chrono::milliseconds(10));

  UserPageSample sample;
  EXPECT_EQ(read_user_page(**page, sample), UserPageReadResult::kNoRdpmc);
}

// --- seqlock torture: the reader must never assemble a torn value -----------

TEST(UserPageSeqlock, TornWindowRetriesAndReturnsConsistentValue) {
  // Hand-built page: initial epoch publishes offset=1000, pmc=10. The
  // hook fires after the reader captured those fields but before the
  // seq recheck, and replaces the whole epoch (offset=5000, pmc=50,
  // lock bumped). A reader without the recheck would return the stale
  // 1010 — or worse, a mix like 1050; the seqlock reader must retry
  // and return exactly the new epoch's 5050.
  PerfUserPage page{};
  page.lock = 2;
  page.index = 1;
  page.offset = 1000;
  page.time_enabled = 777;
  page.time_running = 777;
  page.capabilities = simkernel::kCapUserRdpmc;
  page.sim_magic = simkernel::kSimUserPageMagic;
  page.sim_pmc = 10;

  int mutations = 0;
  UserPageSample sample;
  const auto result = read_user_page(
      page, sample, 16, [&](int point) {
        if (point == 1 && mutations == 0) {  // post-read, pre-recheck
          ++mutations;
          page.lock += 1;  // writer enters
          page.offset = 5000;
          page.sim_pmc = 50;
          page.time_enabled = 888;
          page.time_running = 888;
          page.lock += 1;  // writer leaves
        }
      });
  ASSERT_EQ(result, UserPageReadResult::kOk);
  EXPECT_EQ(mutations, 1);
  EXPECT_EQ(sample.value, 5050u) << "must be the new epoch, never a mix";
  EXPECT_EQ(sample.time_enabled_ns, 888u);
}

TEST(UserPageSeqlock, WriterMidUpdateIsSkipped) {
  // The reader lands while the writer holds the lock (odd seq): the
  // first attempt must be discarded; once the writer finishes, the
  // consistent epoch is returned.
  PerfUserPage page{};
  page.lock = 3;  // odd: writer mid-update
  page.index = 1;
  page.offset = 0;
  page.capabilities = simkernel::kCapUserRdpmc;
  page.sim_magic = simkernel::kSimUserPageMagic;
  page.sim_pmc = 41;

  UserPageSample sample;
  const auto result = read_user_page(
      page, sample, 16, [&](int point) {
        if (point == 0 && (page.lock & 1u) != 0) {
          page.sim_pmc = 42;
          page.lock += 1;  // writer completes
        }
      });
  ASSERT_EQ(result, UserPageReadResult::kOk);
  EXPECT_EQ(sample.value, 42u);
}

TEST(UserPageSeqlock, StuckOddLockExhaustsRetries) {
  // A dead writer (crashed kernel thread in the analogy) leaves the
  // lock odd forever: the reader must give up after its budget instead
  // of spinning, reporting kRetriesExhausted for the fd fallback.
  PerfUserPage page{};
  page.lock = 1;
  page.index = 1;
  page.capabilities = simkernel::kCapUserRdpmc;
  page.sim_magic = simkernel::kSimUserPageMagic;

  int attempts = 0;
  UserPageSample sample;
  const auto result = read_user_page(page, sample, 8,
                                     [&](int point) {
                                       if (point % 2 == 0) ++attempts;
                                     });
  EXPECT_EQ(result, UserPageReadResult::kRetriesExhausted);
  EXPECT_EQ(attempts, 8);
}

TEST(UserPageSeqlock, PerpetuallyMovingLockExhaustsRetries) {
  // A writer that invalidates every single window: the reader must
  // bound its spinning and fall back rather than livelock.
  PerfUserPage page{};
  page.lock = 2;
  page.index = 1;
  page.capabilities = simkernel::kCapUserRdpmc;
  page.sim_magic = simkernel::kSimUserPageMagic;

  UserPageSample sample;
  const auto result = read_user_page(
      page, sample, 8, [&](int point) {
        if (point % 2 == 1) page.lock += 2;  // new epoch every window
      });
  EXPECT_EQ(result, UserPageReadResult::kRetriesExhausted);
}

}  // namespace
}  // namespace hetpapi
