// Golden-output regression tests for the two §IV-B/§V-2 reporting
// surfaces: the papi_avail report and the sysdetect report, byte-exact
// on the Intel hybrid and ARM big.LITTLE sim models. The simulated
// machines are fully deterministic, so any diff here is a real change
// to the reporting layer — update the golden block deliberately when
// the format is meant to change.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/avail_report.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "papi/sysdetect.hpp"
#include "service/stats_report.hpp"
#include "simkernel/kernel.hpp"

namespace hetpapi {
namespace {

struct Instance {
  simkernel::SimKernel kernel;
  papi::SimBackend backend;
  std::unique_ptr<papi::Library> lib;

  explicit Instance(const cpumodel::MachineSpec& machine)
      : kernel(machine), backend(&kernel) {
    papi::LibraryConfig config;
    config.preset_policy = papi::PresetPolicy::kDerivedSum;
    auto created = papi::Library::init(&backend, config);
    EXPECT_TRUE(created.has_value()) << created.status().to_string();
    lib = std::move(*created);
  }

  std::string avail(const std::string& machine_name) const {
    return papi::render_avail_report(*lib, machine_name, "derived");
  }

  std::string native_avail(const std::string& machine_name) const {
    return papi::render_native_avail_report(lib->pfm(), machine_name);
  }

  std::string sysdetect() const {
    return papi::build_sysdetect_report(backend.host(), lib->pfm(),
                                        lib->registry())
        .to_text();
  }
};

TEST(GoldenReports, PapiAvailRaptorLake) {
  Instance instance(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(instance.avail("raptor_lake_i7_13700"),
            R"GOLDEN(Available PAPI preset events on raptor_lake_i7_13700 (policy: derived)
hybrid: yes; core PMUs: adl_glc[intel_core] adl_grt[intel_atom]
components: perf_event(thread) rapl(package) sysinfo(package)

+--------------+-------+-----------------------------+---------------------------------------------------------------------------------------------------------------------+
| preset       | avail | description                 | expands to                                                                                                          |
+--------------+-------+-----------------------------+---------------------------------------------------------------------------------------------------------------------+
| PAPI_TOT_INS | yes   | Total instructions retired  | adl_glc[intel_core]::INST_RETIRED:ANY + adl_grt[intel_atom]::INST_RETIRED:ANY                                       |
| PAPI_TOT_CYC | yes   | Total core cycles           | adl_glc[intel_core]::CPU_CLK_UNHALTED:THREAD + adl_grt[intel_atom]::CPU_CLK_UNHALTED:THREAD                         |
| PAPI_REF_CYC | yes   | Reference clock cycles      | adl_glc[intel_core]::CPU_CLK_UNHALTED:REF_TSC + adl_grt[intel_atom]::CPU_CLK_UNHALTED:REF_TSC                       |
| PAPI_L3_TCA  | yes   | L3 total cache accesses     | adl_glc[intel_core]::LONGEST_LAT_CACHE:REFERENCE + adl_grt[intel_atom]::LONGEST_LAT_CACHE:REFERENCE                 |
| PAPI_L3_TCM  | yes   | L3 total cache misses       | adl_glc[intel_core]::LONGEST_LAT_CACHE:MISS + adl_grt[intel_atom]::LONGEST_LAT_CACHE:MISS                           |
| PAPI_BR_INS  | yes   | Branch instructions retired | adl_glc[intel_core]::BR_INST_RETIRED:ALL_BRANCHES + adl_grt[intel_atom]::BR_INST_RETIRED:ALL_BRANCHES               |
| PAPI_BR_MSP  | yes   | Mispredicted branches       | adl_glc[intel_core]::BR_MISP_RETIRED:ALL_BRANCHES + adl_grt[intel_atom]::BR_MISP_RETIRED:ALL_BRANCHES               |
| PAPI_RES_STL | yes   | Cycles stalled on resources | adl_glc[intel_core]::RESOURCE_STALLS + adl_grt[intel_atom]::RESOURCE_STALLS                                         |
| PAPI_DP_OPS  | yes   | Double-precision operations | adl_glc[intel_core]::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE + adl_grt[intel_atom]::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE |
+--------------+-------+-----------------------------+---------------------------------------------------------------------------------------------------------------------+

9 of 9 presets available
)GOLDEN");
}

TEST(GoldenReports, PapiAvailOrangePi) {
  Instance instance(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(instance.avail("orangepi800_rk3399"),
            R"GOLDEN(Available PAPI preset events on orangepi800_rk3399 (policy: derived)
hybrid: yes; core PMUs: arm_a72[capacity-1024] arm_a53[capacity-485]
components: perf_event(thread) rapl(package) sysinfo(package)

+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------+
| preset       | avail | description                 | expands to                                                                               |
+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------+
| PAPI_TOT_INS | yes   | Total instructions retired  | arm_a72[capacity-1024]::INST_RETIRED + arm_a53[capacity-485]::INST_RETIRED               |
| PAPI_TOT_CYC | yes   | Total core cycles           | arm_a72[capacity-1024]::CPU_CYCLES + arm_a53[capacity-485]::CPU_CYCLES                   |
| PAPI_REF_CYC | no    | Reference clock cycles      | arm_a72[capacity-1024]::<none> + arm_a53[capacity-485]::<none>                           |
| PAPI_L3_TCA  | yes   | L3 total cache accesses     | arm_a72[capacity-1024]::LL_CACHE + arm_a53[capacity-485]::LL_CACHE                       |
| PAPI_L3_TCM  | yes   | L3 total cache misses       | arm_a72[capacity-1024]::LL_CACHE_MISS + arm_a53[capacity-485]::LL_CACHE_MISS             |
| PAPI_BR_INS  | yes   | Branch instructions retired | arm_a72[capacity-1024]::BR_RETIRED + arm_a53[capacity-485]::BR_RETIRED                   |
| PAPI_BR_MSP  | yes   | Mispredicted branches       | arm_a72[capacity-1024]::BR_MIS_PRED_RETIRED + arm_a53[capacity-485]::BR_MIS_PRED_RETIRED |
| PAPI_RES_STL | yes   | Cycles stalled on resources | arm_a72[capacity-1024]::STALL_BACKEND + arm_a53[capacity-485]::STALL_BACKEND             |
| PAPI_DP_OPS  | yes   | Double-precision operations | arm_a72[capacity-1024]::VFP_SPEC + arm_a53[capacity-485]::VFP_SPEC                       |
+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------+

8 of 9 presets available
)GOLDEN");
}

TEST(GoldenReports, PapiAvailMeteorLake) {
  Instance instance(cpumodel::meteor_lake_like());
  EXPECT_EQ(instance.avail("meteor_lake_like"),
            R"GOLDEN(Available PAPI preset events on meteor_lake_like (policy: derived)
hybrid: yes; core PMUs: mtl_rwc[intel_core] mtl_cmt[intel_atom] mtl_lpe[intel_lowpower]
components: perf_event(thread) rapl(package) sysinfo(package)

+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------+
| preset       | avail | description                 | expands to                                                                                                                                                                         |
+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------+
| PAPI_TOT_INS | yes   | Total instructions retired  | mtl_rwc[intel_core]::INST_RETIRED:ANY + mtl_cmt[intel_atom]::INST_RETIRED:ANY + mtl_lpe[intel_lowpower]::INST_RETIRED:ANY                                                          |
| PAPI_TOT_CYC | yes   | Total core cycles           | mtl_rwc[intel_core]::CPU_CLK_UNHALTED:THREAD + mtl_cmt[intel_atom]::CPU_CLK_UNHALTED:THREAD + mtl_lpe[intel_lowpower]::CPU_CLK_UNHALTED:THREAD                                     |
| PAPI_REF_CYC | yes   | Reference clock cycles      | mtl_rwc[intel_core]::CPU_CLK_UNHALTED:REF_TSC + mtl_cmt[intel_atom]::CPU_CLK_UNHALTED:REF_TSC + mtl_lpe[intel_lowpower]::CPU_CLK_UNHALTED:REF_TSC                                  |
| PAPI_L3_TCA  | yes   | L3 total cache accesses     | mtl_rwc[intel_core]::LONGEST_LAT_CACHE:REFERENCE + mtl_cmt[intel_atom]::LONGEST_LAT_CACHE:REFERENCE + mtl_lpe[intel_lowpower]::LONGEST_LAT_CACHE:REFERENCE                         |
| PAPI_L3_TCM  | yes   | L3 total cache misses       | mtl_rwc[intel_core]::LONGEST_LAT_CACHE:MISS + mtl_cmt[intel_atom]::LONGEST_LAT_CACHE:MISS + mtl_lpe[intel_lowpower]::LONGEST_LAT_CACHE:MISS                                        |
| PAPI_BR_INS  | yes   | Branch instructions retired | mtl_rwc[intel_core]::BR_INST_RETIRED:ALL_BRANCHES + mtl_cmt[intel_atom]::BR_INST_RETIRED:ALL_BRANCHES + mtl_lpe[intel_lowpower]::BR_INST_RETIRED:ALL_BRANCHES                      |
| PAPI_BR_MSP  | yes   | Mispredicted branches       | mtl_rwc[intel_core]::BR_MISP_RETIRED:ALL_BRANCHES + mtl_cmt[intel_atom]::BR_MISP_RETIRED:ALL_BRANCHES + mtl_lpe[intel_lowpower]::BR_MISP_RETIRED:ALL_BRANCHES                      |
| PAPI_RES_STL | yes   | Cycles stalled on resources | mtl_rwc[intel_core]::RESOURCE_STALLS + mtl_cmt[intel_atom]::RESOURCE_STALLS + mtl_lpe[intel_lowpower]::RESOURCE_STALLS                                                             |
| PAPI_DP_OPS  | yes   | Double-precision operations | mtl_rwc[intel_core]::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE + mtl_cmt[intel_atom]::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE + mtl_lpe[intel_lowpower]::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE |
+--------------+-------+-----------------------------+------------------------------------------------------------------------------------------------------------------------------------------------------------------------------------+

9 of 9 presets available
)GOLDEN");
}

TEST(GoldenReports, PapiAvailDynamiq) {
  Instance instance(cpumodel::arm_dynamiq());
  EXPECT_EQ(instance.avail("arm_dynamiq"),
            R"GOLDEN(Available PAPI preset events on arm_dynamiq (policy: derived)
hybrid: yes; core PMUs: arm_x2[capacity-1024] arm_a710[capacity-744] arm_a510[capacity-286]
components: perf_event(thread) rapl(package) sysinfo(package)

+--------------+-------+-----------------------------+----------------------------------------------------------------------------------------------------------------------------------------+
| preset       | avail | description                 | expands to                                                                                                                             |
+--------------+-------+-----------------------------+----------------------------------------------------------------------------------------------------------------------------------------+
| PAPI_TOT_INS | yes   | Total instructions retired  | arm_x2[capacity-1024]::INST_RETIRED + arm_a710[capacity-744]::INST_RETIRED + arm_a510[capacity-286]::INST_RETIRED                      |
| PAPI_TOT_CYC | yes   | Total core cycles           | arm_x2[capacity-1024]::CPU_CYCLES + arm_a710[capacity-744]::CPU_CYCLES + arm_a510[capacity-286]::CPU_CYCLES                            |
| PAPI_REF_CYC | no    | Reference clock cycles      | arm_x2[capacity-1024]::<none> + arm_a710[capacity-744]::<none> + arm_a510[capacity-286]::<none>                                        |
| PAPI_L3_TCA  | yes   | L3 total cache accesses     | arm_x2[capacity-1024]::LL_CACHE + arm_a710[capacity-744]::LL_CACHE + arm_a510[capacity-286]::LL_CACHE                                  |
| PAPI_L3_TCM  | yes   | L3 total cache misses       | arm_x2[capacity-1024]::LL_CACHE_MISS + arm_a710[capacity-744]::LL_CACHE_MISS + arm_a510[capacity-286]::LL_CACHE_MISS                   |
| PAPI_BR_INS  | yes   | Branch instructions retired | arm_x2[capacity-1024]::BR_RETIRED + arm_a710[capacity-744]::BR_RETIRED + arm_a510[capacity-286]::BR_RETIRED                            |
| PAPI_BR_MSP  | yes   | Mispredicted branches       | arm_x2[capacity-1024]::BR_MIS_PRED_RETIRED + arm_a710[capacity-744]::BR_MIS_PRED_RETIRED + arm_a510[capacity-286]::BR_MIS_PRED_RETIRED |
| PAPI_RES_STL | yes   | Cycles stalled on resources | arm_x2[capacity-1024]::STALL_BACKEND + arm_a710[capacity-744]::STALL_BACKEND + arm_a510[capacity-286]::STALL_BACKEND                   |
| PAPI_DP_OPS  | yes   | Double-precision operations | arm_x2[capacity-1024]::VFP_SPEC + arm_a710[capacity-744]::VFP_SPEC + arm_a510[capacity-286]::VFP_SPEC                                  |
+--------------+-------+-----------------------------+----------------------------------------------------------------------------------------------------------------------------------------+

8 of 9 presets available
)GOLDEN");
}

TEST(GoldenReports, SysdetectMeteorLake) {
  Instance instance(cpumodel::meteor_lake_like());
  EXPECT_EQ(instance.sysdetect(),
            R"GOLDEN(=== sysdetect report ===
model        : Intel(R) Core(TM) Ultra 7 (Meteor Lake-like)
logical cpus : 22
hybrid       : yes
detected via : cpuid_leaf_1a+pmu_cpus
  core type intel_core       cpus 0-11
  core type intel_atom       cpus 12-19
  core type intel_lowpower   cpus 20-21
PMUs:
  mtl_cmt    (sysfs cpu_atom         type  8) core PMU [intel_atom], 13 events, cpus 12-19
  mtl_rwc    (sysfs cpu_core         type  4) core PMU [intel_core], 15 events, cpus 0-11
  mtl_lpe    (sysfs cpu_lowpower     type  9) core PMU [intel_lowpower], 13 events, cpus 20-21
  rapl       (sysfs power            type 10) 3 events, cpus 0
  perf       (sysfs software         type  1) 3 events, cpus all
  unc_imc_0  (sysfs uncore_imc_0     type 11) 2 events, cpus 0
  sysinfo    (sysfs (software)       type 4294901760) 3 events, cpus all
Components:
  perf_event         scope thread   caps [ rdpmc overflow multiplex] pmus: mtl_cmt,mtl_rwc,mtl_lpe,perf,unc_imc_0
  rapl               scope package  caps [ multiplex] pmus: rapl
  sysinfo            scope package  caps [] pmus: sysinfo
)GOLDEN");
}

TEST(GoldenReports, SysdetectDynamiq) {
  Instance instance(cpumodel::arm_dynamiq());
  EXPECT_EQ(instance.sysdetect(),
            R"GOLDEN(=== sysdetect report ===
model        : ARM part 0xd46
logical cpus : 8
hybrid       : yes
detected via : cpu_capacity
  core type capacity-1024    cpus 7
  core type capacity-744     cpus 4-6
  core type capacity-286     cpus 0-3
PMUs:
  arm_a510   (sysfs armv8_pmuv3_0    type 10) core PMU [capacity-286], 8 events, cpus 0-3
  arm_a710   (sysfs armv8_pmuv3_1    type  9) core PMU [capacity-744], 8 events, cpus 4-6
  arm_x2     (sysfs armv8_pmuv3_2    type  8) core PMU [capacity-1024], 8 events, cpus 7
  perf       (sysfs software         type  1) 3 events, cpus all
  sysinfo    (sysfs (software)       type 4294901760) 3 events, cpus all
Components:
  perf_event         scope thread   caps [ rdpmc overflow multiplex] pmus: arm_a510,arm_a710,arm_x2,perf
  rapl               scope package  caps [ multiplex] pmus: (none)
  sysinfo            scope package  caps [] pmus: sysinfo
)GOLDEN");
}

TEST(GoldenReports, SysdetectRaptorLake) {
  Instance instance(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(instance.sysdetect(),
            R"GOLDEN(=== sysdetect report ===
model        : 13th Gen Intel(R) Core(TM) i7-13700
logical cpus : 24
hybrid       : yes
detected via : cpuid_leaf_1a
  core type intel_core       cpus 0-15
  core type intel_atom       cpus 16-23
PMUs:
  adl_grt    (sysfs cpu_atom         type  8) core PMU [intel_atom], 13 events, cpus 16-23
  adl_glc    (sysfs cpu_core         type  4) core PMU [intel_core], 15 events, cpus 0-15
  rapl       (sysfs power            type  9) 3 events, cpus 0
  perf       (sysfs software         type  1) 3 events, cpus all
  unc_imc_0  (sysfs uncore_imc_0     type 10) 2 events, cpus 0
  sysinfo    (sysfs (software)       type 4294901760) 3 events, cpus all
Components:
  perf_event         scope thread   caps [ rdpmc overflow multiplex] pmus: adl_grt,adl_glc,perf,unc_imc_0
  rapl               scope package  caps [ multiplex] pmus: rapl
  sysinfo            scope package  caps [] pmus: sysinfo
)GOLDEN");
}

TEST(GoldenReports, SysdetectOrangePi) {
  Instance instance(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(instance.sysdetect(),
            R"GOLDEN(=== sysdetect report ===
model        : ARM part 0xd03
logical cpus : 6
hybrid       : yes
detected via : cpu_capacity
  core type capacity-1024    cpus 4-5
  core type capacity-485     cpus 0-3
PMUs:
  arm_a53    (sysfs armv8_pmuv3_0    type  9) core PMU [capacity-485], 8 events, cpus 0-3
  arm_a72    (sysfs armv8_pmuv3_1    type  8) core PMU [capacity-1024], 8 events, cpus 4-5
  perf       (sysfs software         type  1) 3 events, cpus all
  sysinfo    (sysfs (software)       type 4294901760) 3 events, cpus all
Components:
  perf_event         scope thread   caps [ rdpmc overflow multiplex] pmus: arm_a53,arm_a72,perf
  rapl               scope package  caps [ multiplex] pmus: (none)
  sysinfo            scope package  caps [] pmus: sysinfo
)GOLDEN");
}


TEST(GoldenReports, NativeAvailRaptorLake) {
  Instance instance(cpumodel::raptor_lake_i7_13700());
  EXPECT_EQ(instance.native_avail("raptor_lake_i7_13700"),
            R"GOLDEN(Native events on raptor_lake_i7_13700

--- PMU adl_grt (cpu_atom, perf type 8) [core] ---
  adl_grt::INST_RETIRED — Number of instructions retired
      :ANY                  All retired instructions
      :ANY_P                All retired instructions (programmable counter)
  adl_grt::CPU_CLK_UNHALTED — Core cycles when the thread is not halted
      :THREAD               Cycles while the thread runs
      :THREAD_P             Cycles (programmable counter)
      :REF_TSC              Reference cycles at TSC rate
  adl_grt::LONGEST_LAT_CACHE — Last-level cache activity
      :REFERENCE            LLC references
      :MISS                 LLC misses
  adl_grt::BR_INST_RETIRED — Retired branch instructions
      :ALL_BRANCHES         All retired branches
  adl_grt::BR_MISP_RETIRED — Mispredicted branch instructions
      :ALL_BRANCHES         All mispredicted branches
  adl_grt::RESOURCE_STALLS                       Cycles stalled on any resource
  adl_grt::FP_ARITH_INST_RETIRED — Floating-point operations retired
      :SCALAR_DOUBLE        Scalar DP flops
      :256B_PACKED_DOUBLE   256-bit packed DP flops
  adl_grt::MEM_BOUND_STALLS                      Cycles stalled on memory (E-core encoding)

--- PMU adl_glc (cpu_core, perf type 4) [core] ---
  adl_glc::INST_RETIRED — Number of instructions retired
      :ANY                  All retired instructions
      :ANY_P                All retired instructions (programmable counter)
  adl_glc::CPU_CLK_UNHALTED — Core cycles when the thread is not halted
      :THREAD               Cycles while the thread runs
      :THREAD_P             Cycles (programmable counter)
      :REF_TSC              Reference cycles at TSC rate
  adl_glc::LONGEST_LAT_CACHE — Last-level cache activity
      :REFERENCE            LLC references
      :MISS                 LLC misses
  adl_glc::BR_INST_RETIRED — Retired branch instructions
      :ALL_BRANCHES         All retired branches
  adl_glc::BR_MISP_RETIRED — Mispredicted branch instructions
      :ALL_BRANCHES         All mispredicted branches
  adl_glc::RESOURCE_STALLS                       Cycles stalled on any resource
  adl_glc::FP_ARITH_INST_RETIRED — Floating-point operations retired
      :SCALAR_DOUBLE        Scalar DP flops
      :256B_PACKED_DOUBLE   256-bit packed DP flops
  adl_glc::TOPDOWN — Topdown micro-architecture analysis slots
      :SLOTS                Available pipeline slots
      :RETIRING             Slots that retired uops
      :BAD_SPEC             Slots wasted on bad speculation

--- PMU rapl (power, perf type 9) ---
  rapl::RAPL_ENERGY_PKG                          Package domain energy (uJ)
  rapl::RAPL_ENERGY_CORES                        Core domain energy (uJ)
  rapl::RAPL_ENERGY_DRAM                         DRAM domain energy (uJ)

--- PMU perf (software, perf type 1) ---
  perf::CONTEXT_SWITCHES                         Context switches
  perf::CPU_MIGRATIONS                           CPU migrations
  perf::TASK_CLOCK                               Task clock (ns)

--- PMU unc_imc_0 (uncore_imc_0, perf type 10) ---
  unc_imc_0::UNC_M_CAS_COUNT — DRAM CAS commands
      :RD                   Read CAS commands
      :WR                   Write CAS commands

--- PMU sysinfo ((software), perf type 4294901760) ---
  sysinfo::SYS_CTX_SWITCHES                      System-wide context switches (/proc/stat)
  sysinfo::SYS_CPU_TIME_MS                       Aggregate busy cpu time in ms (/proc/stat)
  sysinfo::PKG_TEMP_MC                           Package temperature in millidegrees C

--- events NOT available on every core type ---
  MEM_BOUND_STALLS         only on: adl_grt
  TOPDOWN                  only on: adl_glc

39 native events total
)GOLDEN");
}

TEST(GoldenReports, NativeAvailOrangePi) {
  Instance instance(cpumodel::orangepi800_rk3399());
  EXPECT_EQ(instance.native_avail("orangepi800_rk3399"),
            R"GOLDEN(Native events on orangepi800_rk3399

--- PMU arm_a53 (armv8_pmuv3_0, perf type 9) [core] ---
  arm_a53::INST_RETIRED                          Architecturally executed instructions
  arm_a53::CPU_CYCLES                            Processor cycles
  arm_a53::LL_CACHE                              Last-level cache accesses
  arm_a53::LL_CACHE_MISS                         Last-level cache misses
  arm_a53::BR_RETIRED                            Architecturally executed branches
  arm_a53::BR_MIS_PRED_RETIRED                   Mispredicted branches
  arm_a53::STALL_BACKEND                         Cycles with no dispatch due to backend
  arm_a53::VFP_SPEC                              Speculatively executed FP operations

--- PMU arm_a72 (armv8_pmuv3_1, perf type 8) [core] ---
  arm_a72::INST_RETIRED                          Architecturally executed instructions
  arm_a72::CPU_CYCLES                            Processor cycles
  arm_a72::LL_CACHE                              Last-level cache accesses
  arm_a72::LL_CACHE_MISS                         Last-level cache misses
  arm_a72::BR_RETIRED                            Architecturally executed branches
  arm_a72::BR_MIS_PRED_RETIRED                   Mispredicted branches
  arm_a72::STALL_BACKEND                         Cycles with no dispatch due to backend
  arm_a72::VFP_SPEC                              Speculatively executed FP operations

--- PMU perf (software, perf type 1) ---
  perf::CONTEXT_SWITCHES                         Context switches
  perf::CPU_MIGRATIONS                           CPU migrations
  perf::TASK_CLOCK                               Task clock (ns)

--- PMU sysinfo ((software), perf type 4294901760) ---
  sysinfo::SYS_CTX_SWITCHES                      System-wide context switches (/proc/stat)
  sysinfo::SYS_CPU_TIME_MS                       Aggregate busy cpu time in ms (/proc/stat)
  sysinfo::PKG_TEMP_MC                           Package temperature in millidegrees C

--- events NOT available on every core type ---
  (none)

22 native events total
)GOLDEN");
}

TEST(GoldenReports, AggregateStatsReport) {
  // The `hetpapi_client --stats` rendering of one merged AggSample,
  // pinned byte-for-byte on synthetic values (no simulation in the
  // loop, so a diff here is a formatting change, never noise).
  service::AggSample sample;
  sample.tick = 12;
  sample.t_seconds = 0.06;
  sample.complete = 0;
  service::SlotStats ins;
  ins.sum = 300000;
  ins.min = 90000;
  ins.max = 110000;
  ins.avg = 100000.0;
  ins.stddev = 8164.965809;
  ins.count = 3;
  ins.per_core_type = {{"INST_RETIRED:ANY[intel_atom]", 120000},
                       {"INST_RETIRED:ANY[intel_core]", 180000}};
  service::SlotStats cyc;
  cyc.sum = 450000;
  cyc.min = 140000;
  cyc.max = 160000;
  cyc.avg = 150000.0;
  cyc.stddev = 0.0;
  cyc.count = 3;
  sample.slots = {ins, cyc};
  EXPECT_EQ(
      service::render_agg_stats_report({"PAPI_TOT_INS", "PAPI_TOT_CYC"},
                                       sample),
      R"GOLDEN(aggregate statistics @ tick 12 (t=0.060s, partial)
+--------------+--------+--------+--------+----------+--------+---+
| event        | sum    | min    | max    | avg      | stddev | n |
+--------------+--------+--------+--------+----------+--------+---+
| PAPI_TOT_INS | 300000 |  90000 | 110000 | 100000.0 | 8165.0 | 3 |
| PAPI_TOT_CYC | 450000 | 140000 | 160000 | 150000.0 |    0.0 | 3 |
+--------------+--------+--------+--------+----------+--------+---+
PAPI_TOT_INS per-core-type: INST_RETIRED:ANY[intel_atom]=120000 INST_RETIRED:ANY[intel_core]=180000
)GOLDEN");
}

}  // namespace
}  // namespace hetpapi
