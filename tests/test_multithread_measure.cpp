// Concurrent measurement of multiple threads: one EventSet per thread
// can run simultaneously (the per-thread component rule), which is how a
// multi-threaded application like HPL is measured with calipers; the
// package-scope components (RAPL) stay globally exclusive.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/hpl.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

class MultithreadTest : public ::testing::Test {
 protected:
  MultithreadTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {
    LibraryConfig config;
    config.call_overhead_instructions = 0;
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value());
    lib_ = std::move(*lib);
  }

  SimKernel kernel_;
  SimBackend backend_;
  std::unique_ptr<Library> lib_;
};

TEST_F(MultithreadTest, EventSetsOnDifferentThreadsRunConcurrently) {
  PhaseSpec phase;
  const Tid a = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 40'000'000), CpuSet::of({0}));
  const Tid b = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 70'000'000), CpuSet::of({16}));

  auto set_a = lib_->create_eventset();
  auto set_b = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach(*set_a, a).is_ok());
  ASSERT_TRUE(lib_->attach(*set_b, b).is_ok());
  ASSERT_TRUE(lib_->add_event(*set_a, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib_->add_event(*set_b, "PAPI_TOT_INS").is_ok());

  ASSERT_TRUE(lib_->start(*set_a).is_ok());
  ASSERT_TRUE(lib_->start(*set_b).is_ok())
      << "per-thread component locks must not collide";
  kernel_.run_until_idle(std::chrono::seconds(30));
  auto values_a = lib_->stop(*set_a);
  auto values_b = lib_->stop(*set_b);
  ASSERT_TRUE(values_a.has_value());
  ASSERT_TRUE(values_b.has_value());
  EXPECT_EQ((*values_a)[0], 40'000'000);
  EXPECT_EQ((*values_b)[0], 70'000'000);
}

TEST_F(MultithreadTest, SameThreadStillConflicts) {
  PhaseSpec phase;
  const Tid tid = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::of({0}));
  auto set_a = lib_->create_eventset();
  auto set_b = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach(*set_a, tid).is_ok());
  ASSERT_TRUE(lib_->attach(*set_b, tid).is_ok());
  ASSERT_TRUE(lib_->add_event(*set_a, "PAPI_TOT_INS").is_ok());
  ASSERT_TRUE(lib_->add_event(*set_b, "PAPI_TOT_CYC").is_ok());
  ASSERT_TRUE(lib_->start(*set_a).is_ok());
  EXPECT_EQ(lib_->start(*set_b).code(), StatusCode::kConflict);
  ASSERT_TRUE(lib_->stop(*set_a).has_value());
  EXPECT_TRUE(lib_->start(*set_b).is_ok());
  ASSERT_TRUE(lib_->stop(*set_b).has_value());
}

TEST_F(MultithreadTest, RaplComponentIsPackageGlobal) {
  PhaseSpec phase;
  const Tid a = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::of({0}));
  const Tid b = kernel_.spawn(
      std::make_shared<FixedWorkProgram>(phase, 1'000'000'000ULL),
      CpuSet::of({2}));
  auto set_a = lib_->create_eventset();
  auto set_b = lib_->create_eventset();
  ASSERT_TRUE(lib_->attach(*set_a, a).is_ok());
  ASSERT_TRUE(lib_->attach(*set_b, b).is_ok());
  ASSERT_TRUE(lib_->add_event(*set_a, "rapl::RAPL_ENERGY_PKG").is_ok());
  ASSERT_TRUE(lib_->add_event(*set_b, "rapl::RAPL_ENERGY_PKG").is_ok());
  ASSERT_TRUE(lib_->start(*set_a).is_ok());
  EXPECT_EQ(lib_->start(*set_b).code(), StatusCode::kConflict)
      << "there is only one package energy counter";
  ASSERT_TRUE(lib_->stop(*set_a).has_value());
}

TEST_F(MultithreadTest, PerWorkerCalipersOverHplSumToGroundTruth) {
  // Measure every worker of a small all-core HPL run with its own
  // hybrid EventSet — the workflow a PAPI-instrumented HPL would use —
  // and check the per-worker P+E sums against the simulator's truth.
  const auto& machine = kernel_.machine();
  std::vector<int> cpus = machine.primary_threads_of_type(0);
  const std::vector<int> e_cpus = machine.cpus_of_type(1);
  cpus.insert(cpus.end(), e_cpus.begin(), e_cpus.end());

  workload::HplSimulation hpl(workload::HplConfig::openblas(4608, 192),
                              static_cast<int>(cpus.size()));
  std::vector<Tid> tids;
  std::vector<int> sets;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    const Tid tid = kernel_.spawn(hpl.make_worker(static_cast<int>(i)),
                                  CpuSet::of({cpus[i]}));
    tids.push_back(tid);
    auto set = lib_->create_eventset();
    ASSERT_TRUE(lib_->attach(*set, tid).is_ok());
    ASSERT_TRUE(lib_->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
    ASSERT_TRUE(lib_->add_event(*set, "adl_grt::INST_RETIRED:ANY").is_ok());
    ASSERT_TRUE(lib_->start(*set).is_ok());
    sets.push_back(*set);
  }
  kernel_.run_until_idle(std::chrono::seconds(600));

  for (std::size_t i = 0; i < sets.size(); ++i) {
    auto values = lib_->stop(sets[i]);
    ASSERT_TRUE(values.has_value());
    const auto* truth = kernel_.ground_truth(tids[i]);
    EXPECT_EQ(static_cast<std::uint64_t>((*values)[0]),
              truth->per_type[0].instructions)
        << "worker " << i;
    EXPECT_EQ(static_cast<std::uint64_t>((*values)[1]),
              truth->per_type[1].instructions)
        << "worker " << i;
  }
}

}  // namespace
}  // namespace hetpapi
