// The userspace rdpmc read plan (§V-5): a Library with use_rdpmc
// serves whole groups from mmap'd user pages and must be
// indistinguishable from the fd path — same values, same scaled
// multiplex estimates, same behaviour across plan rebuilds and
// migrations — with the fd path as a silent fallback whenever a page
// cannot serve. The FaultInjectionRdpmc suites run in the sanitized
// chaos CI shard.
#include <gtest/gtest.h>

#include "cpumodel/machine.hpp"
#include "papi/fault_injection.hpp"
#include "papi/library.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::FaultInjectingBackend;
using papi::FaultProfile;
using papi::Library;
using papi::LibraryConfig;
using papi::SimBackend;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

/// Twin libraries over one simulated kernel: identical call sequences,
/// the only difference being which read path serves them. With zero
/// caliper overhead the reads perturb nothing, so values taken at the
/// same sim instant must agree.
class RdpmcPlanTest : public ::testing::Test {
 protected:
  RdpmcPlanTest()
      : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {
    LibraryConfig config;
    config.call_overhead_instructions = 0;
    config.use_rdpmc = true;
    rdpmc_lib_ = make_library(config);
    config.use_rdpmc = false;
    fd_lib_ = make_library(config);
  }

  std::unique_ptr<Library> make_library(const LibraryConfig& config) {
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value()) << lib.status().to_string();
    return std::move(*lib);
  }

  Tid spawn_pinned(std::uint64_t instructions, int cpu) {
    PhaseSpec phase;
    phase.llc_refs_per_kinstr = 6.0;
    phase.llc_miss_ratio = 0.4;
    phase.flops_per_instr = 0.5;
    const Tid tid = kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions),
        CpuSet::of({cpu}));
    backend_.set_default_target(tid);
    return tid;
  }

  /// Build the same EventSet in `lib`, attached to `tid`, started.
  int started_set(Library& lib, Tid tid,
                  const std::vector<const char*>& events,
                  bool multiplex = false) {
    auto set = lib.create_eventset();
    EXPECT_TRUE(set.has_value());
    EXPECT_TRUE(lib.attach(*set, tid).is_ok());
    for (const char* event : events) {
      EXPECT_TRUE(lib.add_event(*set, event).is_ok()) << event;
    }
    if (multiplex) {
      EXPECT_TRUE(lib.set_multiplex(*set).is_ok());
    }
    EXPECT_TRUE(lib.start(*set).is_ok());
    return *set;
  }

  SimKernel kernel_;
  SimBackend backend_;
  std::unique_ptr<Library> rdpmc_lib_;
  std::unique_ptr<Library> fd_lib_;
};

TEST_F(RdpmcPlanTest, HybridGroupValuesMatchFdPathExactly) {
  const Tid tid = spawn_pinned(2'000'000'000, 0);
  const std::vector<const char*> events = {
      "adl_glc::INST_RETIRED:ANY", "adl_grt::INST_RETIRED:ANY",
      "adl_glc::CPU_CLK_UNHALTED:THREAD", "adl_grt::CPU_CLK_UNHALTED:THREAD"};
  const int fast = started_set(*rdpmc_lib_, tid, events);
  const int slow = started_set(*fd_lib_, tid, events);

  for (int step = 0; step < 4; ++step) {
    kernel_.run_for(std::chrono::milliseconds(10));
    auto via_pages = rdpmc_lib_->read(fast);
    auto via_fds = fd_lib_->read(slow);
    ASSERT_TRUE(via_pages.has_value()) << via_pages.status().to_string();
    ASSERT_TRUE(via_fds.has_value());
    ASSERT_EQ(via_pages->size(), events.size());
    EXPECT_EQ(*via_pages, *via_fds) << "step " << step;
  }
  // The thread ran on a P core: its P-PMU slots counted, E-PMU stayed 0.
  auto values = rdpmc_lib_->read(fast);
  ASSERT_TRUE(values.has_value());
  EXPECT_GT((*values)[0], 0);
  EXPECT_EQ((*values)[1], 0);
}

TEST_F(RdpmcPlanTest, DerivedPresetMatchesFdPathExactly) {
  const Tid tid = spawn_pinned(2'000'000'000, 0);
  const std::vector<const char*> events = {"PAPI_TOT_INS", "PAPI_TOT_CYC"};
  const int fast = started_set(*rdpmc_lib_, tid, events);
  const int slow = started_set(*fd_lib_, tid, events);
  kernel_.run_for(std::chrono::milliseconds(50));

  auto via_pages = rdpmc_lib_->read_qualified(fast);
  auto via_fds = fd_lib_->read_qualified(slow);
  ASSERT_TRUE(via_pages.has_value());
  ASSERT_TRUE(via_fds.has_value());
  ASSERT_EQ(via_pages->size(), 2u);
  for (std::size_t i = 0; i < via_pages->size(); ++i) {
    EXPECT_EQ((*via_pages)[i].total, (*via_fds)[i].total);
    ASSERT_EQ((*via_pages)[i].parts.size(), (*via_fds)[i].parts.size());
    for (std::size_t p = 0; p < (*via_pages)[i].parts.size(); ++p) {
      EXPECT_EQ((*via_pages)[i].parts[p].value, (*via_fds)[i].parts[p].value);
      EXPECT_EQ((*via_pages)[i].parts[p].core_type,
                (*via_fds)[i].parts[p].core_type);
    }
  }
}

TEST_F(RdpmcPlanTest, MultiplexedScaledReadsUsePageTimes) {
  // Satellite regression: a page-served read of a multiplexed event
  // must apply the time_enabled/time_running scaling the fd path
  // applies — the user page publishes both. A fast path returning the
  // raw count would undercount rotated events by the rotation factor
  // (~3x here), far outside the multiplex estimation tolerance below.
  const Tid tid = spawn_pinned(30'000'000'000ULL, 0);
  const std::vector<const char*> events = {
      "adl_glc::LONGEST_LAT_CACHE:REFERENCE",
      "adl_glc::LONGEST_LAT_CACHE:MISS",
      "adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
      "adl_glc::BR_MISP_RETIRED:ALL_BRANCHES",
      "adl_glc::RESOURCE_STALLS",
      "adl_glc::FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
      "adl_glc::INST_RETIRED:ANY",
      "adl_glc::CPU_CLK_UNHALTED:THREAD",
      "adl_glc::LONGEST_LAT_CACHE:REFERENCE",
      "adl_glc::BR_INST_RETIRED:ALL_BRANCHES",
      "adl_glc::INST_RETIRED:ANY",
      "adl_glc::CPU_CLK_UNHALTED:THREAD"};
  const int fast = started_set(*rdpmc_lib_, tid, events, /*multiplex=*/true);
  const int slow = started_set(*fd_lib_, tid, events, /*multiplex=*/true);
  kernel_.run_for(std::chrono::seconds(3));

  auto via_pages = rdpmc_lib_->read(fast);
  auto via_fds = fd_lib_->read(slow);
  ASSERT_TRUE(via_pages.has_value());
  ASSERT_TRUE(via_fds.has_value());
  ASSERT_EQ(via_pages->size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const double a = static_cast<double>((*via_pages)[i]);
    const double b = static_cast<double>((*via_fds)[i]);
    EXPECT_GT(a, 0.0) << events[i];
    // The twin sets rotate independently, so estimates (not raw
    // values) are compared, at the established multiplex tolerance.
    EXPECT_NEAR(a, b, 0.15 * b + 1000.0) << events[i];
  }
}

TEST_F(RdpmcPlanTest, PlanRebuiltAcrossAddAndRemove) {
  const Tid tid = spawn_pinned(4'000'000'000ULL, 0);
  const std::vector<const char*> events = {"adl_glc::INST_RETIRED:ANY"};
  const int fast = started_set(*rdpmc_lib_, tid, events);
  const int slow = started_set(*fd_lib_, tid, events);
  kernel_.run_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(rdpmc_lib_->read(fast).has_value());

  // Grow the set: the cached plan must not survive the re-open.
  ASSERT_TRUE(rdpmc_lib_->stop(fast).has_value());
  ASSERT_TRUE(fd_lib_->stop(slow).has_value());
  ASSERT_TRUE(
      rdpmc_lib_->add_event(fast, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  ASSERT_TRUE(
      fd_lib_->add_event(slow, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  ASSERT_TRUE(rdpmc_lib_->start(fast).is_ok());
  ASSERT_TRUE(fd_lib_->start(slow).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  {
    auto via_pages = rdpmc_lib_->read(fast);
    auto via_fds = fd_lib_->read(slow);
    ASSERT_TRUE(via_pages.has_value());
    ASSERT_TRUE(via_fds.has_value());
    ASSERT_EQ(via_pages->size(), 2u);
    EXPECT_EQ(*via_pages, *via_fds);
    EXPECT_GT((*via_pages)[1], 0);
  }

  // Shrink it again: one slot, still page-served, still exact.
  ASSERT_TRUE(rdpmc_lib_->stop(fast).has_value());
  ASSERT_TRUE(fd_lib_->stop(slow).has_value());
  ASSERT_TRUE(
      rdpmc_lib_->remove_event(fast, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(fd_lib_->remove_event(slow, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(rdpmc_lib_->start(fast).is_ok());
  ASSERT_TRUE(fd_lib_->start(slow).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  auto via_pages = rdpmc_lib_->read(fast);
  auto via_fds = fd_lib_->read(slow);
  ASSERT_TRUE(via_pages.has_value());
  ASSERT_TRUE(via_fds.has_value());
  ASSERT_EQ(via_pages->size(), 1u);
  EXPECT_EQ(*via_pages, *via_fds);
}

TEST_F(RdpmcPlanTest, MigrationFallsBackToFdPath) {
  const Tid tid = spawn_pinned(4'000'000'000ULL, 0);
  const std::vector<const char*> events = {"adl_glc::INST_RETIRED:ANY",
                                           "adl_glc::CPU_CLK_UNHALTED:THREAD"};
  const int fast = started_set(*rdpmc_lib_, tid, events);
  const int slow = started_set(*fd_lib_, tid, events);
  kernel_.run_for(std::chrono::milliseconds(10));
  auto before = rdpmc_lib_->read(fast);
  ASSERT_TRUE(before.has_value());
  EXPECT_GT((*before)[0], 0);

  // On an E core the cpu_core events are off-PMU: pages report
  // not-resident and reads must transparently come from the fds.
  ASSERT_TRUE(kernel_.set_affinity(tid, CpuSet::of({16})).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  auto via_pages = rdpmc_lib_->read(fast);
  auto via_fds = fd_lib_->read(slow);
  ASSERT_TRUE(via_pages.has_value())
      << "migration must degrade to the fd path, not fail the read";
  ASSERT_TRUE(via_fds.has_value());
  EXPECT_EQ(*via_pages, *via_fds);
  EXPECT_GE((*via_pages)[0], (*before)[0]) << "count survives the migration";

  // Back on a P core the pages serve again, still agreeing.
  ASSERT_TRUE(kernel_.set_affinity(tid, CpuSet::of({0})).is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  via_pages = rdpmc_lib_->read(fast);
  via_fds = fd_lib_->read(slow);
  ASSERT_TRUE(via_pages.has_value());
  ASSERT_TRUE(via_fds.has_value());
  EXPECT_EQ(*via_pages, *via_fds);
}

// --- fault profiles: the plan under a hostile kernel (chaos CI shard) -------

TEST(FaultInjectionRdpmc, DeniedMmapsFallBackToFdsAndLeakNothing) {
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  FaultProfile profile;
  profile.name = "rdpmc-off";
  profile.rdpmc_unavailable = true;  // /sys/devices/cpu/rdpmc = 0
  FaultInjectingBackend injector(&backend, profile, /*seed=*/7);

  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 2'000'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);

  LibraryConfig config;
  config.use_rdpmc = true;  // asked for, denied, must degrade silently
  auto lib = Library::init(&injector, config);
  ASSERT_TRUE(lib.has_value());
  auto set = (*lib)->create_eventset();
  ASSERT_TRUE(set.has_value());
  ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
  ASSERT_TRUE((*lib)->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
  ASSERT_TRUE(
      (*lib)->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
  ASSERT_TRUE((*lib)->start(*set).is_ok());
  kernel.run_for(std::chrono::milliseconds(20));

  auto values = (*lib)->read(*set);
  ASSERT_TRUE(values.has_value()) << "fd fallback must serve the read";
  EXPECT_GT((*values)[0], 0);
  EXPECT_GT((*values)[1], 0);
  EXPECT_GT(injector.stats().mmaps_denied, 0u)
      << "the plan did try to map user pages";
  EXPECT_EQ(injector.stats().total_injected(), 0u)
      << "a denied mmap is a capability report, not an injected failure";

  ASSERT_TRUE((*lib)->stop(*set).has_value());
  ASSERT_TRUE((*lib)->destroy_eventset(*set).is_ok());
  lib->reset();
  EXPECT_EQ(injector.open_fd_count(), 0u) << "fd ledger clean at teardown";
}

TEST(FaultInjectionRdpmc, MixedProfileSoakLeaksNoFds) {
  // The rdpmc plan under the full failure mix (denied mmaps, flaky
  // opens, EINTR bursts, dying counters): reads may fail, values may
  // degrade, but nothing crashes and the fd ledger is empty after every
  // library teardown, for every seed.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SimKernel kernel(cpumodel::raptor_lake_i7_13700());
    SimBackend backend(&kernel);
    auto profile = FaultProfile::named("mixed");
    ASSERT_TRUE(profile.has_value());
    FaultInjectingBackend injector(&backend, *profile, seed);

    PhaseSpec phase;
    const Tid tid = kernel.spawn(
        std::make_shared<FixedWorkProgram>(phase, 2'000'000'000),
        CpuSet::of({0}));
    backend.set_default_target(tid);

    LibraryConfig config;
    config.use_rdpmc = true;
    {
      auto lib = Library::init(&injector, config);
      if (lib.has_value()) {
        auto set = (*lib)->create_eventset();
        ASSERT_TRUE(set.has_value());
        (void)(*lib)->attach(*set, tid);
        for (const char* event :
             {"PAPI_TOT_INS", "PAPI_TOT_CYC", "PAPI_BR_INS"}) {
          (void)(*lib)->add_event(*set, event);
        }
        (void)(*lib)->start(*set);
        for (int step = 0; step < 6; ++step) {
          kernel.run_for(std::chrono::milliseconds(10));
          (void)(*lib)->read(*set);
          (void)(*lib)->read_checked(*set);
        }
        (void)(*lib)->stop(*set);
        (void)(*lib)->destroy_eventset(*set);
      }
    }
    EXPECT_EQ(injector.open_fd_count(), 0u)
        << "seed " << seed << " leaked " << injector.open_fd_count()
        << " fd(s)";
  }
}

TEST(FaultInjectionRdpmc, StaleFdProfileDegradesWithoutLeaking) {
  // rdpmc off + counters dying mid-run: strict reads may fail, but
  // read_checked keeps collecting with degraded slots, and teardown
  // closes every fd the injector ever handed out.
  SimKernel kernel(cpumodel::raptor_lake_i7_13700());
  SimBackend backend(&kernel);
  auto profile = FaultProfile::named("stale-fd");
  ASSERT_TRUE(profile.has_value());
  FaultInjectingBackend injector(&backend, *profile, /*seed=*/11);

  PhaseSpec phase;
  const Tid tid = kernel.spawn(
      std::make_shared<FixedWorkProgram>(phase, 2'000'000'000), CpuSet::of({0}));
  backend.set_default_target(tid);

  LibraryConfig config;
  config.use_rdpmc = true;
  {
    auto lib = Library::init(&injector, config);
    ASSERT_TRUE(lib.has_value());
    auto set = (*lib)->create_eventset();
    ASSERT_TRUE(set.has_value());
    ASSERT_TRUE((*lib)->attach(*set, tid).is_ok());
    ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_INS").is_ok());
    ASSERT_TRUE((*lib)->add_event(*set, "PAPI_TOT_CYC").is_ok());
    if ((*lib)->start(*set).is_ok()) {
      for (int step = 0; step < 20; ++step) {
        kernel.run_for(std::chrono::milliseconds(5));
        if (auto checked = (*lib)->read_checked(*set)) {
          ASSERT_EQ(checked->values.size(), 2u);
          for (std::size_t i = 0; i < checked->values.size(); ++i) {
            EXPECT_GE(checked->values[i], 0) << "no garbage values";
          }
        }
      }
    }
    EXPECT_GT(injector.stats().mmaps_denied, 0u);
  }
  EXPECT_EQ(injector.open_fd_count(), 0u);
}

}  // namespace
}  // namespace hetpapi
