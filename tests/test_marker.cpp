// LIKWID-style marker API (§V-5): per-region counter deltas must match
// what direct reads bracket, regions nest LIFO, and per-thread
// accumulators merge in report().
#include <gtest/gtest.h>

#include <thread>

#include "cpumodel/machine.hpp"
#include "papi/library.hpp"
#include "papi/marker.hpp"
#include "papi/sim_backend.hpp"
#include "simkernel/kernel.hpp"
#include "workload/programs.hpp"

namespace hetpapi {
namespace {

using papi::Library;
using papi::LibraryConfig;
using papi::MarkerManager;
using papi::RegionStats;
using simkernel::CpuSet;
using simkernel::SimKernel;
using simkernel::Tid;
using workload::FixedWorkProgram;
using workload::PhaseSpec;

std::uint64_t sim_clock(void* kernel) {
  return static_cast<std::uint64_t>(
      static_cast<SimKernel*>(kernel)->now().since_epoch.count());
}

const RegionStats* find_region(const std::vector<RegionStats>& regions,
                               std::string_view name) {
  for (const RegionStats& r : regions) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

class MarkerTest : public ::testing::Test {
 protected:
  MarkerTest() : kernel_(cpumodel::raptor_lake_i7_13700()), backend_(&kernel_) {
    // No caliper overhead: marker reads must not perturb the counts the
    // delta assertions compare against.
    LibraryConfig config;
    config.call_overhead_instructions = 0;
    config.use_rdpmc = true;  // the path the marker hot loop is built for
    auto lib = Library::init(&backend_, config);
    EXPECT_TRUE(lib.has_value()) << lib.status().to_string();
    lib_ = std::move(*lib);
  }

  /// A started two-event set following `tid`.
  int make_started_set(Tid tid) {
    auto set = lib_->create_eventset();
    EXPECT_TRUE(set.has_value());
    EXPECT_TRUE(lib_->attach(*set, tid).is_ok());
    EXPECT_TRUE(lib_->add_event(*set, "adl_glc::INST_RETIRED:ANY").is_ok());
    EXPECT_TRUE(
        lib_->add_event(*set, "adl_glc::CPU_CLK_UNHALTED:THREAD").is_ok());
    EXPECT_TRUE(lib_->start(*set).is_ok());
    return *set;
  }

  Tid spawn_pinned(std::uint64_t instructions, int cpu) {
    PhaseSpec phase;
    const Tid tid = kernel_.spawn(
        std::make_shared<FixedWorkProgram>(phase, instructions),
        CpuSet::of({cpu}));
    backend_.set_default_target(tid);
    return tid;
  }

  SimKernel kernel_;
  papi::SimBackend backend_;
  std::unique_ptr<Library> lib_;
};

TEST_F(MarkerTest, RegionDeltasMatchBracketingReads) {
  const Tid tid = spawn_pinned(500'000'000, 0);
  const int set = make_started_set(tid);

  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());

  auto before = lib_->read(set);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(markers.region_begin("work").is_ok());
  kernel_.run_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(markers.region_end("work").is_ok());
  auto after = lib_->read(set);
  ASSERT_TRUE(after.has_value());

  const auto regions = markers.report();
  const RegionStats* work = find_region(regions, "work");
  ASSERT_NE(work, nullptr);
  EXPECT_EQ(work->entries, 1u);
  EXPECT_EQ(work->time, 10'000'000u) << "sim clock: exactly the run_for span";
  ASSERT_EQ(work->totals.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(work->totals[i], (*after)[i] - (*before)[i])
        << "slot " << i << ": marker delta must equal the bracketing reads";
    EXPECT_GT(work->totals[i], 0);
  }
}

TEST_F(MarkerTest, NestedRegionsAccountInnerInsideOuter) {
  const Tid tid = spawn_pinned(800'000'000, 0);
  const int set = make_started_set(tid);

  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());

  ASSERT_TRUE(markers.region_begin("outer").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_begin("inner").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_end("inner").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_end("outer").is_ok());

  const auto regions = markers.report();
  const RegionStats* outer = find_region(regions, "outer");
  const RegionStats* inner = find_region(regions, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->entries, 1u);
  EXPECT_EQ(inner->entries, 1u);
  EXPECT_EQ(outer->time, 15'000'000u);
  EXPECT_EQ(inner->time, 5'000'000u);
  ASSERT_EQ(outer->totals.size(), inner->totals.size());
  for (std::size_t i = 0; i < outer->totals.size(); ++i) {
    EXPECT_GT(inner->totals[i], 0);
    EXPECT_GT(outer->totals[i], inner->totals[i])
        << "outer brackets inner plus extra work";
  }
}

TEST_F(MarkerTest, EndingOuterImplicitlyClosesInnerLifo) {
  const Tid tid = spawn_pinned(500'000'000, 0);
  const int set = make_started_set(tid);

  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());

  ASSERT_TRUE(markers.region_begin("outer").is_ok());
  ASSERT_TRUE(markers.region_begin("inner").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_end("outer").is_ok())
      << "ending the outer region subsumes the open inner one";

  const auto regions = markers.report();
  const RegionStats* outer = find_region(regions, "outer");
  const RegionStats* inner = find_region(regions, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->entries, 1u);
  EXPECT_EQ(inner->entries, 1u) << "implicitly closed, still accounted";

  // Both frames are closed: ending either name again is an error.
  EXPECT_FALSE(markers.region_end("inner").is_ok());
  EXPECT_FALSE(markers.region_end("outer").is_ok());
}

TEST_F(MarkerTest, UnmatchedEndIsAnError) {
  const Tid tid = spawn_pinned(1'000'000, 0);
  const int set = make_started_set(tid);
  MarkerManager markers;
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());
  const Status status = markers.region_end("never-begun");
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(MarkerTest, UnattachedThreadIsAnError) {
  MarkerManager markers;
  EXPECT_FALSE(markers.region_begin("r").is_ok());
  EXPECT_FALSE(markers.region_end("r").is_ok());
  EXPECT_FALSE(markers.detach_thread().is_ok());
}

TEST_F(MarkerTest, NestingDeeperThanLimitIsAnError) {
  const Tid tid = spawn_pinned(1'000'000, 0);
  const int set = make_started_set(tid);
  MarkerManager markers;
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());
  for (int depth = 0; depth < papi::kMaxMarkerDepth; ++depth) {
    ASSERT_TRUE(markers.region_begin("level-" + std::to_string(depth)).is_ok())
        << "depth " << depth;
  }
  const Status status = markers.region_begin("one-too-deep");
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST_F(MarkerTest, ReportMergesThreads) {
  const Tid tid = spawn_pinned(800'000'000, 0);
  const int set = make_started_set(tid);

  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);

  // Two measuring threads, run back to back (the single-threaded sim
  // kernel advances between them); each brackets the shared "both"
  // region once, and one adds a private region.
  auto run_thread = [&](bool add_private) {
    std::thread worker([&] {
      ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());
      ASSERT_TRUE(markers.region_begin("both").is_ok());
      if (add_private) {
        ASSERT_TRUE(markers.region_begin("private").is_ok());
      }
      kernel_.run_for(std::chrono::milliseconds(5));
      if (add_private) {
        ASSERT_TRUE(markers.region_end("private").is_ok());
      }
      ASSERT_TRUE(markers.region_end("both").is_ok());
      ASSERT_TRUE(markers.detach_thread().is_ok());
    });
    worker.join();
  };
  run_thread(true);
  run_thread(false);

  const auto regions = markers.report();
  const RegionStats* both = find_region(regions, "both");
  const RegionStats* priv = find_region(regions, "private");
  ASSERT_NE(both, nullptr);
  ASSERT_NE(priv, nullptr);
  EXPECT_EQ(both->entries, 2u) << "one entry per thread, merged by name";
  EXPECT_EQ(priv->entries, 1u);
  EXPECT_EQ(both->time, 10'000'000u);
  for (const long long total : both->totals) EXPECT_GT(total, 0);
}

TEST_F(MarkerTest, ResetClearsStatsKeepsRegions) {
  const Tid tid = spawn_pinned(500'000'000, 0);
  const int set = make_started_set(tid);
  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());

  ASSERT_TRUE(markers.region_begin("r").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_end("r").is_ok());
  markers.reset();

  auto regions = markers.report();
  const RegionStats* r = find_region(regions, "r");
  ASSERT_NE(r, nullptr) << "region names survive reset";
  EXPECT_EQ(r->entries, 0u);
  EXPECT_EQ(r->time, 0u);
  for (const long long total : r->totals) EXPECT_EQ(total, 0);

  // The region accumulates again after reset.
  ASSERT_TRUE(markers.region_begin("r").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.region_end("r").is_ok());
  regions = markers.report();
  r = find_region(regions, "r");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->entries, 1u);
  EXPECT_EQ(r->time, 5'000'000u);
}

TEST_F(MarkerTest, DetachDiscardsOpenFrames) {
  const Tid tid = spawn_pinned(500'000'000, 0);
  const int set = make_started_set(tid);
  MarkerManager markers;
  markers.set_time_source(&sim_clock, &kernel_);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());

  ASSERT_TRUE(markers.region_begin("abandoned").is_ok());
  kernel_.run_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(markers.detach_thread().is_ok());

  const auto regions = markers.report();
  const RegionStats* abandoned = find_region(regions, "abandoned");
  ASSERT_NE(abandoned, nullptr);
  EXPECT_EQ(abandoned->entries, 0u) << "open frame dropped, not accumulated";
  EXPECT_EQ(abandoned->time, 0u);

  // Re-attaching starts clean: the old frame cannot be ended.
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());
  EXPECT_FALSE(markers.region_end("abandoned").is_ok());
}

TEST_F(MarkerTest, CustomTimeSourceUnitsArePreserved) {
  const Tid tid = spawn_pinned(1'000'000, 0);
  const int set = make_started_set(tid);
  MarkerManager markers;
  // A fake clock that advances 7 units per observation.
  std::uint64_t ticks = 0;
  markers.set_time_source(
      +[](void* ctx) {
        auto* t = static_cast<std::uint64_t*>(ctx);
        return *t += 7;
      },
      &ticks);
  ASSERT_TRUE(markers.attach_thread(lib_.get(), set).is_ok());
  ASSERT_TRUE(markers.region_begin("r").is_ok());  // t0 = 7
  ASSERT_TRUE(markers.region_end("r").is_ok());    // t1 = 14
  const auto regions = markers.report();
  const RegionStats* r = find_region(regions, "r");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->time, 7u);
}

}  // namespace
}  // namespace hetpapi
